# Local entry points mirroring .github/workflows/ci.yml and nightly.yml.
PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: ci test fast slow cov lint docstrings workflows chaos cluster bench gate regen-baseline serve serve-sharded serve-cluster

ci:
	bash scripts/ci.sh

test:
	python -m pytest -x -q

fast:
	python -m pytest -x -q -m "not slow"

slow:
	python -m pytest -q -m slow

# Coverage-gated fast lane (requires pytest-cov; floor mirrors CI).
cov:
	python -m pytest -x -q -m "not slow" \
		--cov=repro --cov-report=term-missing:skip-covered \
		--cov-fail-under=$(or $(REPRO_COV_FLOOR),90)

lint:
	ruff check src tests benchmarks scripts
	python scripts/check_workflows.py

# Public service/engine definitions must carry docstrings (stdlib gate).
docstrings:
	python scripts/check_docstrings.py

# Workflow lint on its own: actions SHA-pinned, jobs time-boxed.
workflows:
	python scripts/check_workflows.py

# Fault-injection lane: journal crash-resume, job failover, self-heal.
chaos:
	python -m pytest -q \
		tests/service/test_durable_jobs.py \
		tests/service/test_job_failover.py \
		tests/service/test_self_heal.py
	python examples/durable_client.py

# Cluster lane: remote-node tests in-process, then the real CLI
# processes over loopback TCP with a SIGKILL mid-run.
cluster:
	python -m pytest -q tests/service/test_remote_nodes.py
	python scripts/cluster_smoke.py

bench:
	REPRO_BENCH_SCALE=$(or $(REPRO_BENCH_SCALE),0.25) \
		python -m pytest -q \
			benchmarks/bench_engine_scaling.py \
			benchmarks/bench_service_throughput.py \
			benchmarks/bench_dataset_plane.py \
			benchmarks/bench_shard_scaling.py \
			benchmarks/bench_replication.py \
			benchmarks/bench_durability.py \
			benchmarks/bench_remote_nodes.py \
			benchmarks/bench_observability.py

gate:
	python scripts/check_bench_regression.py

# Regenerate the regression-gate baselines on THIS machine, into this
# machine's runner-class directory (baselines/cpu<N>/ -- the gate
# prefers it on machines with N cores, which is what lets parallel
# jobs>1 rows gate).  Dispatch the nightly baseline-regen job to do the
# same on the CI runner class.
regen-baseline: bench
	mkdir -p benchmarks/baselines/cpu$(shell python -c 'import os; print(os.cpu_count())')
	cp benchmarks/results/BENCH_engine.json \
	   benchmarks/results/BENCH_service.json \
	   benchmarks/results/BENCH_kernels.json \
	   benchmarks/results/BENCH_shard.json \
	   benchmarks/results/BENCH_replication.json \
	   benchmarks/results/BENCH_durability.json \
	   benchmarks/results/BENCH_remote.json \
	   benchmarks/results/BENCH_obs.json \
	   benchmarks/baselines/cpu$(shell python -c 'import os; print(os.cpu_count())')/
	@echo "baselines updated; commit benchmarks/baselines/"

serve:
	python -m repro.cli serve --port 8000

# Sharded deployment: router + 4 shard worker processes on one box.
serve-sharded:
	python -m repro.cli serve --port 8000 --shards 4

# Cluster router waiting for remote `hypdb shard --join` nodes
# (REPRO_CLUSTER_TOKEN or --cluster-token supplies the shared secret).
serve-cluster:
	python -m repro.cli serve --port 8000 --shards 0 \
		--cluster-token $(or $(REPRO_CLUSTER_TOKEN),change-me)
