"""Service API v2 walkthrough: async jobs and the work-sharing batch planner.

Starts an in-process analysis service (the same code path ``hypdb
serve`` runs), registers a synthetic flights table, and then:

1. submits an ``analyze`` job, polls it, and checks the async result is
   byte-identical to the synchronous endpoint;
2. fires a burst of identical submissions to show job-level coalescing;
3. sends a mixed batch through ``POST /v2/batch`` and prints the plan
   summary (grouping, warm-first ordering, de-duplication).

Run with::

    PYTHONPATH=src python examples/async_client.py
"""

from __future__ import annotations

import json
import threading

from repro.datasets.flights import flight_data
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server

SQL = (
    "SELECT Carrier, avg(Delayed) FROM FlightData "
    "WHERE Carrier IN ('AA','UA') GROUP BY Carrier"
)


def main() -> None:
    table = flight_data(n_rows=5000, seed=7)
    service = AnalysisService()
    server = make_server(service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    client.register(
        "flights", columns={name: table.column(name) for name in table.columns}
    )

    try:
        # -- 1. submit / poll / fetch ----------------------------------
        spec = {"kind": "analyze", "dataset": "flights", "sql": SQL, "seed": 7}
        accepted = client.submit(spec)
        print(f"submitted: job_id={accepted['job_id']} status={accepted['job_status']}")
        finished = client.wait(accepted["job_id"])
        print(f"finished:  status={finished['job']['status']} "
              f"cached={finished['job']['cached']}")

        sync = client.analyze("flights", SQL, seed=7)
        assert finished["result"] == sync["result"], "async != sync payload"
        print("async result == synchronous result (same canonical bytes)")

        # -- 2. identical submissions coalesce -------------------------
        burst_spec = {**spec, "seed": 11}  # a fresh (cold) request key
        job_ids = [client.submit(burst_spec)["job_id"] for _ in range(5)]
        for job_id in job_ids:
            client.wait(job_id)
        stats = client.stats()
        print(f"burst of 5 identical submissions: "
              f"{stats['job_manager']['coalesced']} coalesced, "
              f"{stats['job_manager']['completed']} executed")

        # -- 3. planned batch ------------------------------------------
        batch = client.batch_v2(
            [
                {"kind": "query", "dataset": "flights",
                 "sql": "SELECT Carrier, avg(Delayed) FROM t GROUP BY Carrier"},
                {"kind": "discover", "dataset": "flights",
                 "treatment": "Carrier", "outcome": "Delayed", "test": "chi2"},
                {"kind": "discover", "dataset": "flights",
                 "treatment": "Carrier", "outcome": "Delayed", "test": "chi2"},
            ]
        )
        print(f"batch plan: {json.dumps(batch['plan'], sort_keys=True)}")
        kinds = [item["kind"] for item in batch["results"]]
        print(f"batch results (submission order): {kinds}")
    finally:
        server.shutdown()
        server.server_close()
        service.close()


if __name__ == "__main__":
    main()
