"""Query workbench: the relational substrate as a standalone toolkit.

HypDB's lower layers are useful on their own.  This example walks through:

1. loading data from CSV and running parsed SQL against it;
2. composing WHERE predicates programmatically;
3. building an OLAP data cube and answering counts from it;
4. measuring dependence with the independence-test zoo;
5. screening every attribute of a table for potential confounding of a
   chosen (treatment, outcome) pair -- a mini "bias linter".

Run:  python examples/query_workbench.py
"""

import csv
import tempfile
from pathlib import Path

from repro import Table
from repro.core.query import GroupByQuery
from repro.datasets import flight_data
from repro.infotheory import EntropyEngine
from repro.relation import DataCube, Gt, In, group_by_average
from repro.stats import ChiSquaredTest, HybridTest


def main() -> None:
    # --- 1. CSV round trip + SQL --------------------------------------
    table = flight_data(n_rows=15000, seed=11, include_keys=False)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "flights.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.columns)
            writer.writerows(table.rows())
        table = Table.from_csv(path)
    print(f"Loaded {table!r} from CSV")

    query = GroupByQuery.from_sql(
        "SELECT Carrier, avg(Delayed) FROM flights "
        "WHERE Airport IN ('SEA','SFO') AND Month >= 6 GROUP BY Carrier"
    )
    result = group_by_average(
        table, query.group_by_columns(), query.outcomes, where=query.where
    )
    print(f"\nParsed query: {query!r}")
    print(result.format())

    # --- 2. programmatic predicates -----------------------------------
    summer_weekends = In("Month", [6, 7, 8]) & Gt("DayOfWeek", 5)
    print(f"\nSummer weekend flights: {table.where(summer_weekends).n_rows}")

    # --- 3. OLAP cube ---------------------------------------------------
    cube = DataCube(table, ["Carrier", "Airport", "Delayed"])
    print(f"\nData cube over 3 attributes: {cube.n_cuboids()} cuboids")
    delayed_by_carrier = cube.counts(["Carrier", "Delayed"])
    for carrier in ("AA", "UA"):
        total = sum(c for (k, _), c in delayed_by_carrier.items() if k == carrier)
        late = delayed_by_carrier.get((carrier, 1), 0)
        print(f"  {carrier}: {late}/{total} delayed (from the cube, no scan)")

    # --- 4. dependence measurement --------------------------------------
    engine = EntropyEngine(table)
    print(f"\nI(Carrier; Delayed)          = "
          f"{engine.mutual_information(('Carrier',), ('Delayed',)):.4f} nats")
    print(f"I(Carrier; Delayed | Airport) = "
          f"{engine.mutual_information(('Carrier',), ('Delayed',), ('Airport',)):.4f} nats")
    verdict = HybridTest(seed=0).test(table, "Carrier", "Delayed", ("Airport", "DepTime"))
    print(f"Carrier ⊥ Delayed | Airport, DepTime?  p = {verdict.p_value:.3g} "
          f"({verdict.method})")

    # --- 5. a mini bias linter ------------------------------------------
    print("\nBias linter: which attributes are unbalanced across carriers")
    print("AND associated with delays? (candidate confounders/mediators)")
    chi2 = ChiSquaredTest()
    for attribute in table.columns:
        if attribute in ("Carrier", "Delayed"):
            continue
        unbalanced = chi2.test(table, "Carrier", attribute).dependent(0.01)
        predictive = chi2.test(table, "Delayed", attribute).dependent(0.01)
        if unbalanced and predictive:
            print(f"  ! {attribute}")


if __name__ == "__main__":
    main()
