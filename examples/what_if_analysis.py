"""What-if analysis and the extension toolbox.

Demonstrates the future-work extensions the paper sketches (Secs. 4, 8):

1. **What-if queries** -- "what would the delay rate at these airports be
   if every flight were operated by UA?" -- answered causally (adjustment
   formula), not by naive tuple substitution.
2. **Effect bounds** -- when HypDB cannot identify which boundary members
   are the treatment's true parents, adjust for every admissible subset
   and report the envelope of effects.
3. **SQL emission** -- render the rewritten (de-biased) query as plain
   SQL (paper Listing 2) to run on any engine.
4. **FDR control** -- analyze one query per month and control the false
   discovery rate across the twelve balance tests.

Run:  python examples/what_if_analysis.py
"""

from repro import HypDB
from repro.core.bounds import effect_bounds
from repro.core.query import GroupByQuery
from repro.core.sqlgen import rewritten_total_effect_sql
from repro.core.whatif import what_if
from repro.datasets import flight_data
from repro.relation.predicates import Eq, In
from repro.stats.fdr import benjamini_hochberg

SQL = (
    "SELECT Carrier, avg(Delayed) FROM FlightData "
    "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
    "GROUP BY Carrier"
)


def main() -> None:
    table = flight_data(n_rows=30000, seed=7)
    db = HypDB(table, seed=7)
    report = db.analyze(SQL)
    z = list(report.covariates)
    print(f"Discovered covariates: {z}\n")

    # --- 1. What-if -----------------------------------------------------
    subpopulation = In("Airport", ["COS", "MFE", "MTJ", "ROC"]) & In(
        "Carrier", ["AA", "UA"]
    )
    answer = what_if(table, "Carrier", "Delayed", z, where=subpopulation)
    print("What-if: delay rate at the four airports under interventions")
    print(f"  factual mix:        {answer.factual_average:.4f}")
    for carrier in ("AA", "UA"):
        print(f"  do(Carrier={carrier}):   {answer.interventions[carrier]:.4f} "
              f"({answer.effect_of(carrier):+.4f} vs factual)")
    print(f"  (exact matching kept {answer.matched_fraction:.0%} of rows)\n")

    # --- 2. Effect bounds ------------------------------------------------
    boundary = [
        name for name in report.covariate_discovery.markov_boundary
        if name != "Delayed"
    ]
    bounds = effect_bounds(
        table.where(subpopulation), "Carrier", "Delayed", boundary, max_subset_size=2
    )
    print(f"Effect bounds over adjustment subsets of MB(Carrier) = {boundary}:")
    print(f"  UA - AA delay effect in [{bounds.lower:+.4f}, {bounds.upper:+.4f}] "
          f"({len(bounds.candidates)} admissible sets)")
    print(f"  sign identified: {bounds.sign_identified()}\n")

    # --- 3. SQL emission --------------------------------------------------
    query = GroupByQuery.from_sql(SQL)
    print("Rewritten query as SQL (paper Listing 2):")
    print(rewritten_total_effect_sql(query, z, table_name="FlightData"))
    print()

    # --- 4. FDR over many contexts ----------------------------------------
    print("FDR-controlled monthly audit (is the query biased in month m?):")
    p_values = []
    for month in range(1, 13):
        monthly = db.analyze(
            GroupByQuery(
                treatment="Carrier",
                outcomes=("Delayed",),
                where=subpopulation & Eq("Month", month),
            ),
            covariates=z,
            compute_direct=False,
        )
        p_values.append(monthly.contexts[0].balance_total.p_value)
    outcome = benjamini_hochberg(p_values, q=0.05)
    for month, (p, flagged) in enumerate(zip(p_values, outcome.rejected), start=1):
        marker = "BIASED" if flagged else "ok"
        print(f"  month {month:>2d}: p={p:.2e}  {marker}")
    print(f"  -> {outcome.n_rejected}/12 months flagged at FDR q=0.05")


if __name__ == "__main__":
    main()
