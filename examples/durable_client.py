"""Durable jobs walkthrough: journal crash-resume and shard job failover.

Two demonstrations that jobs outlive the process that accepted them:

1. **Crash-resume from the job journal.** A service with
   ``--job-journal`` "crashes" (is closed) leaving journaled jobs
   behind; a restarted service pointed at the same directory replays
   the log and finishes every job under its ORIGINAL id with bytes
   identical to an in-process control.
2. **Job failover across shard death.** A two-shard cluster accepts a
   job, the fault-injection harness (``REPRO_FAULTS``) pins it
   mid-compute on its owning shard, the shard is killed -- and
   ``wait()`` on the same public job id still returns the control's
   exact bytes, served by the survivor.

Run with::

    PYTHONPATH=src python examples/durable_client.py
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service import faults
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService, build_table
from repro.service.fingerprint import fingerprint_table
from repro.service.journal import JobJournal
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server
from repro.service.shard.ring import HashRing

SQL_VARIANTS = (
    "SELECT Income, avg(Price) FROM t GROUP BY Income",
    "SELECT Region, avg(Price) FROM t GROUP BY Region",
)


def columns_for(seed: int) -> dict:
    table = staples_data(n_rows=1500, seed=seed)
    return {name: table.column(name) for name in table.columns}


def crash_resume_demo(tmp_dir: str) -> None:
    """A restarted service finishes journaled jobs byte-identically."""
    print("-- 1. crash-resume from the job journal " + "-" * 24)
    cols = columns_for(seed=7)
    control = AnalysisService()
    control.register("staples", columns=cols)
    expected = {
        sql: control.query("staples", sql).payload for sql in SQL_VARIANTS
    }
    control.close()

    # A "crashed" server: journal records exist, results were never
    # produced.  Writing the records directly stands in for a process
    # that died between accepting the jobs and finishing them.
    journal = JobJournal(tmp_dir)
    for index, sql in enumerate(SQL_VARIANTS, start=1):
        journal.record_submitted(
            f"j{index:08d}",
            {"kind": "query", "dataset": "staples", "sql": sql},
        )
    print(f"journal holds {len(SQL_VARIANTS)} unfinished jobs "
          f"from the 'crashed' server")

    restarted = AnalysisService(job_journal=tmp_dir)
    try:
        restarted.register("staples", columns=cols)
        recovery = restarted.recover_jobs()
        print(f"restart replayed the journal: {recovery}")
        assert recovery["resumed"] == len(SQL_VARIANTS), recovery
        for index, sql in enumerate(SQL_VARIANTS, start=1):
            job = restarted.job_manager.wait(f"j{index:08d}", timeout=120)
            payload = job.service_result().payload
            assert payload == expected[sql], "resume changed the bytes!"
        print("every job finished under its original id, byte-identical "
              "to the control")
    finally:
        restarted.close()


def job_failover_demo() -> None:
    """A killed shard's in-flight job completes on the survivor."""
    print("-- 2. job failover across shard death " + "-" * 26)
    cols = columns_for(seed=8)
    sql = SQL_VARIANTS[0]

    control = AnalysisService()
    control.register("doomed", columns=cols)
    expected = control.query("doomed", sql).payload
    control.close()

    # The ring owner is a pure function of the dataset fingerprint, so
    # the doomed shard is chosen up front; a `slow` fault rule (env
    # plan, inherited by the spawned workers) pins the job mid-compute
    # there so the kill is deterministic.
    fingerprint = fingerprint_table(build_table(columns=cols))
    owner = HashRing(["s0", "s1"]).node_for(fingerprint)
    os.environ[faults.ENV_VAR] = json.dumps(
        [{"site": "service.compute", "action": "slow", "seconds": 30,
          "scope": owner, "match": {"dataset": "doomed"}}]
    )
    try:
        supervisor = ShardSupervisor(shards=2, start_timeout=120.0)
        backends = supervisor.start()
    finally:
        os.environ.pop(faults.ENV_VAR, None)
        faults.clear()
    router = ShardRouter(backends)
    server = make_router_server(router)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
    try:
        client.register("doomed", columns=cols)
        accepted = client.submit(
            {"kind": "query", "dataset": "doomed", "sql": sql}
        )
        job_id = accepted["job_id"]
        print(f"job {job_id} accepted by its ring owner {owner}")

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(job_id)["job"]["status"] == "running":
                break
            time.sleep(0.02)
        supervisor.kill(owner)
        router.mark_dead(router._backends[owner])
        print(f"killed {owner} mid-compute")

        finished = client.wait(job_id, timeout=120)
        assert finished["job"]["id"] == job_id, "public id must not change"
        assert canonical_json_bytes(finished["result"]) == expected, (
            "failover changed the bytes!"
        )
        stats = client.stats()["router"]
        print(f"wait({job_id!r}) returned byte-identical bytes from the "
              f"survivor (job_failovers={stats['job_failovers']}, "
              f"live={stats['live_shards']})")
    finally:
        server.shutdown()
        server.server_close()
        supervisor.close()


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp_dir:
        crash_resume_demo(tmp_dir)
    job_failover_demo()


if __name__ == "__main__":
    main()
