"""Pricing discrimination: intended or unintended?

Reproduces the paper's Staples case study (Sec. 7.3, Fig. 3 bottom).  A
Wall Street Journal investigation found Staples' online prices were higher
for lower-income users.  The legally decisive question is *how*: does the
pricing algorithm use income (direct effect), or does it use distance to a
competitor's store, which merely correlates with income (indirect effect)?

HypDB answers with the total/direct decomposition:

* the total effect of income on price is real (low income -> higher price);
* the direct effect is zero -- the entire effect flows through Distance,
  supporting the "unintended consequence" reading.

Run:  python examples/pricing_discrimination.py
"""

from repro import HypDB
from repro.datasets import staples_data


def main() -> None:
    table = staples_data(n_rows=50000, seed=4)
    print(f"Loaded {table!r} (WSJ-style online pricing data)\n")

    db = HypDB(table, seed=1)
    report = db.analyze("SELECT Income, avg(Price) FROM StaplesData GROUP BY Income")
    context = report.contexts[0]

    print("Observed high-price rate by income group:")
    for value in context.naive.treatment_values:
        label = "low income " if value == 0 else "high income"
        print(f"  {label}: {context.naive.average(value):.3f}")
    print(f"  difference p-value: {context.naive.p_value():.2g}  (significant)\n")

    print(f"Discovered mediators: {list(report.mediators)}")
    print(f"Coarse explanation:   "
          f"{context.coarse[0].attribute} carries "
          f"{context.coarse[0].responsibility:.0%} of the association\n")

    total, direct = context.total, context.direct
    print("Causal decomposition of the income -> price effect:")
    print(f"  total effect:  diff={total.difference():+.4f}  p={total.p_value():.2g}"
          f"  -> real (mediated) discrimination")
    print(f"  direct effect: diff={direct.difference():+.4f}  p={direct.p_value():.2g}"
          f"  -> no evidence the algorithm uses income itself")

    print("\nFine-grained explanations (the mechanism):")
    for triple in context.fine["Distance"]:
        income = "low" if triple.treatment_value == 0 else "high"
        price = "high" if triple.outcome_value == 1 else "low"
        print(f"  {income}-income users live {triple.attribute_value} from "
              f"competitors and see {price} prices")


if __name__ == "__main__":
    main()
