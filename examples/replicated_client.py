"""Replicated deployment walkthrough: K=2 fan-out, read balancing, failover.

Starts the topology ``hypdb serve --shards 3 --replicas 2`` runs -- a
router over three shard worker processes keeping TWO copies of every
dataset -- registers a synthetic staples table, and then:

1. shows the registration fanning out to the ring owner plus its
   distinct ring successor (the ``/v2/datasets`` catalog reports the
   live placement) and that answers through the router are
   byte-identical to a single-process control;
2. fires a stream of duplicate reads and shows BOTH replicas serving
   them (the router round-robins warm reads across live replicas, so a
   hot dataset's read throughput scales with K);
3. kills the owning shard and shows the surviving replica answering the
   very next request from its warm cache -- zero recompute, no cold
   re-registration window -- before the router re-replicates in the
   background to restore K=2.

Run with::

    PYTHONPATH=src python examples/replicated_client.py
"""

from __future__ import annotations

import threading
import time

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"


def columns_for(seed: int) -> dict:
    table = staples_data(n_rows=2000, seed=seed)
    return {name: table.column(name) for name in table.columns}


def main() -> None:
    # -- the replicated topology (`hypdb serve --shards 3 --replicas 2`) -
    supervisor = ShardSupervisor(shards=3, start_timeout=120.0)
    router = ShardRouter(supervisor.start(), replicas=2)
    router_server = make_router_server(router)
    threading.Thread(target=router_server.serve_forever, daemon=True).start()
    sharded = ServiceClient("http://127.0.0.1:%d" % router_server.server_address[1])

    # -- a single-process control, to prove byte identity ---------------
    service = AnalysisService()
    control_server = make_server(service)
    threading.Thread(target=control_server.serve_forever, daemon=True).start()
    control = ServiceClient("http://127.0.0.1:%d" % control_server.server_address[1])

    try:
        cols = columns_for(seed=7)
        sharded.register("staples", columns=cols)
        control.register("staples", columns=cols)

        # -- 1. K=2 fan-out + byte identity -----------------------------
        placement = sharded.replicas("staples")
        assert len(placement) == 2, placement
        print(f"shards: {router.describe()['shards']}")
        print(f"replicated placement (owner first): {placement}")
        baseline = canonical_json_bytes(control.query("staples", SQL)["result"])
        via_router = canonical_json_bytes(sharded.query("staples", SQL)["result"])
        assert via_router == baseline, "replication changed the answer!"
        print("router answers == single-process answers (byte-identical)")

        # -- 2. warm reads served by both replicas ----------------------
        before = {
            shard: sharded.stats()["shards"][shard]["requests"]
            for shard in placement
        }
        reads = 10
        for _ in range(reads):
            response = sharded.query("staples", SQL)
            assert canonical_json_bytes(response["result"]) == baseline
        served = {
            shard: sharded.stats()["shards"][shard]["requests"] - before[shard]
            for shard in placement
        }
        assert all(count > 0 for count in served.values()), served
        print(f"{reads} duplicate reads round-robined across replicas: {served}")

        # -- 3. kill the owner: warm failover, zero recompute -----------
        # Warm an /analyze on both replicas first: unlike /query it runs
        # the counting kernels, so "no new kernel passes after the kill"
        # is a real zero-recompute check, not a vacuous 0 -> 0.
        analyze = {"treatment": "Income", "test": "chi2"}
        analyze_baseline = canonical_json_bytes(
            control.analyze("staples", SQL, **analyze)["result"]
        )
        for _ in range(3):
            sharded.analyze("staples", SQL, **analyze)
        owner, survivor = placement
        kernels_before = sharded.stats()["shards"][survivor]["kernel_counters"][
            "total"
        ]
        assert kernels_before > 0, "both replicas should have analyzed by now"
        supervisor.kill(owner)
        router.mark_dead(router._backends[owner])
        print(f"killed {owner} (owner of staples)")

        # Three reads: every one must be byte-identical, and the warm
        # replica serves from cache (a read may also land on a freshly
        # re-replicated third copy, which computes cold exactly once --
        # same bytes -- so only the flags can differ, never the answer).
        responses = [sharded.query("staples", SQL) for _ in range(3)]
        for response in responses:
            assert canonical_json_bytes(response["result"]) == baseline
        assert any(response["cached"] for response in responses), (
            "the surviving replica should answer from its warm cache"
        )
        analyzed = sharded.analyze("staples", SQL, **analyze)
        assert canonical_json_bytes(analyzed["result"]) == analyze_baseline
        kernels_after = sharded.stats()["shards"][survivor]["kernel_counters"][
            "total"
        ]
        assert kernels_after == kernels_before, "failover must not recompute"
        print(f"requests after the kill answered by the surviving replica "
              f"{survivor} without recompute (kernel passes unchanged: "
              f"{kernels_before} -> {kernels_after})")

        # -- background re-replication restores K=2 ---------------------
        record = router._registrations["staples"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and len(record.locations) < 2:
            time.sleep(0.1)
        stats = sharded.stats()["router"]
        print(f"placement restored to {list(record.locations)} "
              f"(rereplications={stats['rereplications']}, "
              f"live={stats['live_shards']})")
        assert len(record.locations) == 2
    finally:
        router_server.shutdown()
        router_server.server_close()
        control_server.shutdown()
        control_server.server_close()
        service.close()
        supervisor.close()


if __name__ == "__main__":
    main()
