"""Fairness audit: detecting algorithmic/institutional unfairness post factum.

The paper (Sec. 7.3) shows how HypDB audits decision data with a plain
group-by query on the protected attribute.  Two case studies:

1. **Berkeley 1973 admissions** (real data, the famous discrimination
   lawsuit): the aggregate admission rates look damning for women; HypDB
   shows the disparity is explained by department choice -- and that after
   conditioning on Department the trend actually *reverses*, an insight
   beyond association-based tools like FairTest.

2. **Census income** (AdultData-style): a large gender/income gap is
   carried almost entirely by marital status -- and the fine-grained
   explanations surface the married-male/high-income pattern that reveals
   the dataset's income attribute is household-, not person-level.

Run:  python examples/fairness_audit.py
"""

from repro import HypDB
from repro.datasets import adult_data, berkeley_data


def audit_berkeley() -> None:
    print("=" * 70)
    print("Case 1: UC Berkeley 1973 graduate admissions (real data)")
    print("=" * 70)
    table = berkeley_data()
    db = HypDB(table, seed=1)
    report = db.analyze(
        "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender"
    )
    context = report.contexts[0]

    print(f"\nAdmission rates: male {context.naive.average('Male'):.1%}, "
          f"female {context.naive.average('Female'):.1%} "
          f"(p = {context.naive.p_value():.2g})")
    print("The university was sued over this gap. HypDB's analysis:\n")
    print(f"  query biased w.r.t. {list(report.mediators)}: {report.biased}")
    print("  fine-grained explanations (who applied where):")
    for triple in context.fine["Department"]:
        print(f"    {triple.treatment_value} applicants -> department "
              f"{triple.attribute_value} (accepted={triple.outcome_value})")
    direct = context.direct
    print("\n  conditioning on Department (direct-effect view):")
    print(f"    male {direct.average('Male'):.1%}, female {direct.average('Female'):.1%} "
          f"(p = {direct.p_value():.2g})")
    print("    -> the disparity not only disappears, it REVERSES: within")
    print("       departments, women were admitted at a higher rate.")


def audit_income() -> None:
    print()
    print("=" * 70)
    print("Case 2: gender and income in census-style data")
    print("=" * 70)
    table = adult_data(n_rows=30000, seed=5)
    db = HypDB(table, seed=1)
    report = db.analyze("SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender")
    context = report.contexts[0]

    print(f"\nHigh-income share: male {context.naive.average('Male'):.1%}, "
          f"female {context.naive.average('Female'):.1%}")
    print("A FairTest-style report stops here. HypDB continues:\n")
    print("  responsibility ranking (what carries the gap):")
    for item in context.coarse[:4]:
        print(f"    {item.attribute:<15s} {item.responsibility:.2f}")
    print("  top fine-grained explanation:")
    top = context.fine["MaritalStatus"][0]
    print(f"    ({top.treatment_value}, Income={top.outcome_value}, "
          f"MaritalStatus={top.attribute_value})")
    print("    -> far more married men than married women, and marriage is")
    print("       strongly associated with (household-reported) high income:")
    print("       the income attribute is inconsistent for gender studies.")
    direct = context.direct
    print(f"\n  direct effect of gender on income: diff = "
          f"{direct.difference():+.4f} (p = {direct.p_value():.2g}) -> "
          f"{'no evidence' if direct.p_value() >= 0.01 else 'evidence'} of direct discrimination")


def main() -> None:
    audit_berkeley()
    audit_income()


if __name__ == "__main__":
    main()
