"""Mediation analysis against a known ground truth (CancerData).

The paper's CancerData (Fig. 7) is simulated from a known causal DAG, so
every HypDB output can be checked against the truth:

* Does lung cancer cause car accidents?  *Indirectly yes* (via fatigue),
  *directly no* (there is no edge).
* Are the discovered covariates the true parents of Lung_Cancer?
* Does the responsibility ranking point at the true mediator?

This example also demonstrates the lower-level API: running the CD
algorithm directly, comparing against the ground-truth DAG, and computing
the adjusted effects by hand.

Run:  python examples/cancer_mediation.py
"""

from repro import HypDB
from repro.core.rewrite import direct_effect, total_effect
from repro.datasets import cancer_dag, cancer_data


def main() -> None:
    truth = cancer_dag()
    table = cancer_data(n_rows=2000, seed=3)
    print(f"Ground-truth DAG: {truth!r}")
    print(f"  PA(Lung_Cancer)  = {sorted(truth.parents('Lung_Cancer'))}")
    print(f"  PA(Car_Accident) = {sorted(truth.parents('Car_Accident'))}")
    print(f"  direct edge Lung_Cancer -> Car_Accident? "
          f"{truth.has_edge('Lung_Cancer', 'Car_Accident')}\n")

    db = HypDB(table, seed=1)
    report = db.analyze(
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer"
    )
    context = report.contexts[0]

    print("HypDB's automatic discovery vs the truth:")
    print(f"  discovered covariates Z = {list(report.covariates)} "
          f"(truth: {sorted(truth.parents('Lung_Cancer'))})")
    print(f"  discovered mediators  M = {list(report.mediators)} "
          f"(truth: {sorted(truth.parents('Car_Accident'))})\n")

    print("Effects of lung cancer on car accidents:")
    for estimate in (context.naive, context.total, context.direct):
        print(f"  {estimate.kind:<7s} diff={estimate.difference():+.4f}  "
              f"p={estimate.p_value():.3g}")
    print("  -> total effect real, direct effect indistinguishable from 0,")
    print("     exactly as the ground-truth DAG dictates.\n")

    print("Responsibility ranking (who explains the bias):")
    for item in context.coarse:
        print(f"  {item.attribute:<20s} {item.responsibility:.2f}")
    print()

    # ------------------------------------------------------------------
    # The same estimates through the low-level rewriting API.
    # ------------------------------------------------------------------
    z = list(report.covariates)
    m = list(report.mediators)
    by_hand_total = total_effect(table, "Lung_Cancer", ["Car_Accident"], z)
    by_hand_direct = direct_effect(table, "Lung_Cancer", ["Car_Accident"], z, m)
    print("Low-level API (Listing 2 / Eq. 3 by hand):")
    print(f"  adjusted ATE  = {by_hand_total.difference():+.4f} "
          f"(matched {by_hand_total.matched_fraction:.0%} of rows)")
    print(f"  adjusted NDE  = {by_hand_direct.difference():+.4f} "
          f"(matched {by_hand_direct.matched_fraction:.0%} of rows)")


if __name__ == "__main__":
    main()
