"""Quickstart: think twice about your group-by query.

Reproduces the paper's running example (Fig. 1): an analyst compares two
carriers with a group-by-average query, picks the one with the lower
average delay -- and picks wrong, because the query is biased by the
airports each carrier flies from (Simpson's paradox).  HypDB detects the
bias, explains it, and rewrites the query.

Run:  python examples/quickstart.py
"""

from repro import HypDB
from repro.datasets import flight_data
from repro.relation.groupby import group_by_average
from repro.relation.predicates import In

SQL = (
    "SELECT Carrier, avg(Delayed) FROM FlightData "
    "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
    "GROUP BY Carrier"
)


def main() -> None:
    table = flight_data(n_rows=30000, seed=7)
    print(f"Loaded {table!r}\n")

    # --- Step 1: what the analyst sees -------------------------------
    where = In("Carrier", ["AA", "UA"]) & In("Airport", ["COS", "MFE", "MTJ", "ROC"])
    naive = group_by_average(table, ["Carrier"], ["Delayed"], where=where)
    print("The analyst's query:")
    print(f"  {SQL}\n")
    print(naive.format())
    better = min(naive.keys(), key=lambda key: naive.average(key))[0]
    print(f"\n=> {better} looks better. But is this a sound decision?\n")

    # --- Step 2: the hidden reversal ----------------------------------
    per_airport = group_by_average(
        table, ["Airport", "Carrier"], ["Delayed"], where=where
    )
    print("Per-airport delay rates (Simpson's paradox):")
    print(per_airport.format())
    print()

    # --- Step 3: HypDB ------------------------------------------------
    db = HypDB(table, seed=7)
    report = db.analyze(SQL)
    print(report.format())

    context = report.contexts[0]
    print("\nSummary:")
    print(f"  biased query?            {report.biased}")
    print(f"  discovered covariates:   {list(report.covariates)}")
    print(f"  naive difference:        {context.naive.difference():+.4f} "
          f"(p={context.naive.p_value():.2g})")
    print(f"  adjusted (total) diff:   {context.total.difference():+.4f} "
          f"(p={context.total.p_value():.2g})  <- the trend reverses")
    print(f"  direct-effect diff:      {context.direct.difference():+.4f} "
          f"(p={context.direct.p_value():.2g})  <- not significant")


if __name__ == "__main__":
    main()
