"""Sharded deployment walkthrough: router + shard workers, failover live.

Starts the same topology ``hypdb serve --shards 2`` runs -- a router
process-owning the public HTTP API over two shard worker processes --
registers two synthetic staples tables, and then:

1. shows the consistent-hash placement (which shard owns which dataset)
   and that answers through the router are byte-identical to a
   single-process service;
2. fires duplicate requests and reads the router's warm-key hit counter
   (duplicates route to the shard already holding the result);
3. kills one shard worker and shows the router re-registering the dead
   shard's datasets on their ring successors -- same bytes, cold cache.

Run with::

    PYTHONPATH=src python examples/sharded_client.py
"""

from __future__ import annotations

import threading

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"


def columns_for(seed: int) -> dict:
    table = staples_data(n_rows=2000, seed=seed)
    return {name: table.column(name) for name in table.columns}


def main() -> None:
    datasets = {"staples_a": columns_for(seed=1), "staples_b": columns_for(seed=2)}

    # -- the sharded topology (what `hypdb serve --shards 2` builds) ----
    supervisor = ShardSupervisor(shards=2, start_timeout=120.0)
    router = ShardRouter(supervisor.start())
    router_server = make_router_server(router)
    threading.Thread(target=router_server.serve_forever, daemon=True).start()
    sharded = ServiceClient("http://127.0.0.1:%d" % router_server.server_address[1])

    # -- a single-process control, to prove byte identity ---------------
    service = AnalysisService()
    control_server = make_server(service)
    threading.Thread(target=control_server.serve_forever, daemon=True).start()
    control = ServiceClient("http://127.0.0.1:%d" % control_server.server_address[1])

    try:
        for name, cols in datasets.items():
            sharded.register(name, columns=cols)
            control.register(name, columns=cols)

        # -- 1. placement + byte identity ------------------------------
        placement = {
            name: record.location for name, record in router._registrations.items()
        }
        print(f"shards: {router.describe()['shards']}")
        print(f"consistent-hash placement: {placement}")
        baseline = {}
        for name in datasets:
            via_router = canonical_json_bytes(sharded.query(name, SQL)["result"])
            baseline[name] = canonical_json_bytes(control.query(name, SQL)["result"])
            assert via_router == baseline[name], "sharding changed the answer!"
        print("router answers == single-process answers (byte-identical)")

        # -- 2. duplicates hit the warm shard --------------------------
        for _ in range(5):
            assert sharded.query("staples_a", SQL)["cached"] is True
        stats = sharded.stats()["router"]
        print(f"5 duplicate requests -> warm-key hits: {stats['warm_hits']} "
              f"(routed to the shard already holding the result)")

        # -- 3. failover: kill the shard owning staples_a --------------
        victim_name = placement["staples_a"]
        victim = next(b for b in supervisor.backends if b.name == victim_name)
        victim.process.terminate()
        victim.process.join(timeout=10)
        print(f"killed {victim_name} (owner of staples_a)")

        response = sharded.query("staples_a", SQL)
        assert canonical_json_bytes(response["result"]) == baseline["staples_a"]
        moved_to = router._registrations["staples_a"].location
        print(f"staples_a re-registered on {moved_to}; answer unchanged "
              f"(cached={response['cached']}: the successor recomputed cold)")
        stats = sharded.stats()["router"]
        print(f"router stats: live={stats['live_shards']} "
              f"failovers={stats['failovers']}")
    finally:
        router_server.shutdown()
        router_server.server_close()
        control_server.shutdown()
        control_server.server_close()
        service.close()
        supervisor.close()


if __name__ == "__main__":
    main()
