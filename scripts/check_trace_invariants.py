#!/usr/bin/env python3
"""Offline trace checker: join per-process trace logs, assert invariants.

Every traced process appends finished request traces as JSON lines under
the shared ``--trace-log`` directory (``trace-<scope>-<pid>.jsonl``); a
distributed request leaves one record per process, all carrying the same
16-hex trace id.  This script joins the pieces by id and asserts the
properties the cluster is *supposed* to have, using only telemetry --
responses never carry any of this, so the checker is the one place the
claims are machine-verified end to end:

1. **continuity** -- a router record that forwarded a request
   (``router.forward`` span) is joined by at least one record from
   another scope under the same trace id: the header propagation
   actually crossed the process boundary;
2. **warm routing is honest** -- a route decided by the warm-key map
   (``router.route`` with policy ``warm``/``warm_balanced``) lands on a
   shard that answers from its result cache (``service.execute`` with
   ``cached=true``) -- gossip did not advertise keys the shard lacks;
3. **coalescing has leaders** -- every coalesced execution
   (``coalesced=true``) shares its request key with some non-coalesced
   execution in the log: followers only ever attach to real work;
4. **cached answers never recompute** -- ``cached=true`` executions
   record ``kernel_passes=0``: a warm hit (including post-failover
   replica reads) touched no statistical kernels.

Usage::

    python scripts/check_trace_invariants.py TRACE_DIR [TRACE_DIR ...]

Exits non-zero listing every violated invariant; run by
``scripts/cluster_smoke.py`` against the traces its own requests left.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

WARM_POLICIES = {"warm", "warm_balanced"}


def load_records(directories: list[str]) -> list[dict]:
    """Every parseable trace record under the given directories."""
    records: list[dict] = []
    corrupt = 0
    for directory in directories:
        for path in sorted(Path(directory).glob("trace-*.jsonl")):
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        corrupt += 1
                        continue
                    if isinstance(record, dict) and record.get("trace_id"):
                        records.append(record)
    if corrupt:
        print(f"note: skipped {corrupt} corrupt trace line(s)", file=sys.stderr)
    return records


def spans_named(records: list[dict], name: str) -> list[dict]:
    """All spans called ``name`` across the given records."""
    return [
        span
        for record in records
        for span in record.get("spans", ())
        if span.get("name") == name
    ]


def check_traces(records: list[dict]) -> list[str]:
    """Run every invariant; returns human-readable violation messages."""
    violations: list[str] = []
    by_id: dict[str, list[dict]] = defaultdict(list)
    for record in records:
        by_id[record["trace_id"]].append(record)

    # Leaders for invariant 3 are searched log-wide: the leader of a
    # coalesced follower ran under a *different* request's trace.
    executes = spans_named(records, "service.execute")
    leader_keys = {
        span["attrs"].get("key")
        for span in executes
        if not span["attrs"].get("coalesced")
    }

    for trace_id, pieces in sorted(by_id.items()):
        scopes = {piece.get("scope", "?") for piece in pieces}
        forwards = spans_named(pieces, "router.forward")
        routes = spans_named(pieces, "router.route")
        trace_executes = spans_named(pieces, "service.execute")

        # 1. continuity: a forwarded request has a remote-side record.
        if forwards and len(scopes) < 2:
            violations.append(
                f"{trace_id}: router forwarded to "
                f"{sorted({s['attrs'].get('shard') for s in forwards})} but no "
                f"other process logged the trace (scopes: {sorted(scopes)})"
            )

        # 2. warm routing: the shard really answered from its cache.  A
        # trace with several routes (failover retry) is exempt -- only a
        # clean warm route that still computed is a gossip lie.
        warm_routes = [
            span for span in routes
            if span["attrs"].get("policy") in WARM_POLICIES
        ]
        if warm_routes and len(routes) == len(warm_routes) and trace_executes:
            if not any(span["attrs"].get("cached") for span in trace_executes):
                violations.append(
                    f"{trace_id}: routed by warm-key policy "
                    f"{warm_routes[0]['attrs'].get('policy')!r} but every "
                    f"execution computed cold"
                )

        for span in trace_executes:
            attrs = span["attrs"]
            # 3. every coalesced follower has a real leader somewhere.
            if attrs.get("coalesced") and attrs.get("key") not in leader_keys:
                violations.append(
                    f"{trace_id}: coalesced execution of key "
                    f"{attrs.get('key')!r} has no non-coalesced leader in the log"
                )
            # 4. cached answers touch no kernels.
            if attrs.get("cached") and attrs.get("kernel_passes", 0) != 0:
                violations.append(
                    f"{trace_id}: cached execution of key {attrs.get('key')!r} "
                    f"recorded {attrs['kernel_passes']} kernel pass(es)"
                )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "directories", nargs="+", metavar="TRACE_DIR",
        help="directories holding trace-<scope>-<pid>.jsonl files",
    )
    args = parser.parse_args(argv)

    records = load_records(args.directories)
    if not records:
        print("FAIL: no trace records found", file=sys.stderr)
        return 1
    violations = check_traces(records)
    trace_ids = {record["trace_id"] for record in records}
    cross = sum(
        1
        for trace_id in trace_ids
        if len({r.get("scope") for r in records if r["trace_id"] == trace_id}) > 1
    )
    print(
        f"checked {len(trace_ids)} trace(s) across {len(records)} record(s); "
        f"{cross} span process boundaries"
    )
    if violations:
        for message in violations:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print("trace invariants hold: continuity, warm routing, "
          "coalescing leaders, zero-recompute cache hits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
