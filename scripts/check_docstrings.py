#!/usr/bin/env python
"""Docstring-coverage gate for the service and engine layers.

Walks ``src/repro/service/`` and ``src/repro/engine/`` with ``ast`` and
fails (exit 1) listing every *public* module, class, function, or method
that lacks a docstring.  Public means: a name without a leading
underscore (dunders are therefore exempt -- ``__init__`` is documented
by its class's Parameters section), reachable through public names (the
members of a private class are not), and not nested inside a function.

This is deliberately a tiny stdlib script rather than a linter plugin:
the repo's ruff config enforces only correctness rules, CI must not
depend on optional tool installs, and the scope (two packages whose
docstrings double as the API reference behind ``docs/``) stays explicit
here.  Run directly or via ``scripts/ci.sh`` / ``make ci``::

    python scripts/check_docstrings.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKED_TREES = ("src/repro/service", "src/repro/engine")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in_node(node: ast.AST, qualifier: str) -> list[str]:
    """Recursively collect public defs under ``node`` missing docstrings."""
    missing: list[str] = []
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            if _is_public(child.name):
                if not ast.get_docstring(child):
                    missing.append(f"{qualifier}{child.name} (class)")
                # Members of private classes are unreachable through
                # public names: only public classes are walked.
                missing.extend(_missing_in_node(child, f"{qualifier}{child.name}."))
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(child.name) and not ast.get_docstring(child):
                missing.append(f"{qualifier}{child.name}()")
            # Nested defs (closures, local helpers) are implementation
            # detail whatever their name: recursion stops here.
    return missing


def check_file(path: Path) -> list[str]:
    """Every public definition in ``path`` missing a docstring."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    relative = path.relative_to(REPO_ROOT)
    missing = []
    if not ast.get_docstring(tree):
        missing.append(f"{relative}: module docstring")
    missing.extend(
        f"{relative}: {entry}" for entry in _missing_in_node(tree, qualifier="")
    )
    return missing


def main() -> int:
    """Entry point: walk the checked trees, report, exit non-zero on gaps."""
    missing: list[str] = []
    checked = 0
    for tree in CHECKED_TREES:
        for path in sorted((REPO_ROOT / tree).rglob("*.py")):
            checked += 1
            missing.extend(check_file(path))
    if missing:
        print(f"{len(missing)} public definition(s) missing docstrings:")
        for entry in missing:
            print(f"  {entry}")
        return 1
    print(f"docstring coverage OK: {checked} files, no public gaps")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
