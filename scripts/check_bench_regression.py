#!/usr/bin/env python3
"""Benchmark regression gate: compare BENCH_*.json results against baselines.

Usage::

    python scripts/check_bench_regression.py \
        [--results benchmarks/results] [--baselines benchmarks/baselines] \
        [--tolerance 0.25]

For every ``BENCH_<name>.json`` in the results directory with a matching
file in the baselines directory, each timing row is compared after
normalizing by the run's ``calibration_seconds`` (a fixed single-core
numpy workload timed on the same machine), which factors out raw
runner-speed differences.  The gate fails (exit 1) when any normalized
timing exceeds its baseline by more than ``--tolerance`` (default 25%,
env ``REPRO_BENCH_TOLERANCE``).

Guard rails:

* results whose ``workload`` metadata differs from the baseline's are
  skipped with a warning (different ``REPRO_BENCH_SCALE`` runs are not
  comparable);
* results with no baseline are reported but pass -- commit the produced
  JSON under ``benchmarks/baselines/`` to start gating a new benchmark;
* rows whose baseline timing is below the noise floor (50 ms) are
  reported but not gated -- sub-second scheduler jitter would otherwise
  make the gate cry wolf;
* parallel rows (``jobs > 1``) are only gated when the baseline was
  recorded on a machine with the same ``cpu_count`` -- calibration
  normalizes single-core speed, not core count, so a 1-core baseline
  says nothing about a 4-core runner's parallel timings
  (single-threaded rows stay gated);
* **runner classes**: a baseline under ``baselines/cpu<N>/`` (N = this
  machine's ``os.cpu_count()``) takes precedence over the root
  ``baselines/`` file, so each runner class can carry its own parallel
  rows -- the nightly ``baseline-regen`` dispatch commits into the
  matching class directory;
* improvements are reported, never required.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Baseline rows faster than this are too noisy to gate at tight tolerances.
NOISE_FLOOR_SECONDS = 0.05


def _row_key(row: dict) -> tuple:
    return (row.get("engine", "?"), row.get("jobs", "?"))


def _is_parallel(row: dict) -> bool:
    """Rows using more than one worker; single-threaded rows (serial
    engine, service cold/warm) stay gated across core counts because
    calibration normalizes single-core speed."""
    jobs = row.get("jobs", 1)
    return isinstance(jobs, (int, float)) and jobs > 1


def _normalized(row: dict, payload: dict) -> float | None:
    calibration = payload.get("calibration_seconds")
    seconds = row.get("seconds")
    if not calibration or seconds is None:
        return None
    return seconds / calibration


def check_file(result_path: Path, baseline_path: Path, tolerance: float) -> list[str]:
    """Return a list of failure messages for one benchmark pair."""
    try:
        with open(result_path) as handle:
            current = json.load(handle)
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except (json.JSONDecodeError, OSError) as error:
        # A corrupt baseline (or result) must fail loudly: silently skipping
        # would disable the gate exactly when something went wrong.
        return [f"{result_path.name}: malformed benchmark JSON ({error})"]
    if not isinstance(current, dict) or not isinstance(baseline, dict):
        return [f"{result_path.name}: malformed benchmark JSON (expected an object)"]

    if current.get("workload") != baseline.get("workload"):
        print(
            f"  ~ {result_path.name}: workload metadata differs from baseline "
            f"(current {current.get('workload')}, baseline {baseline.get('workload')}); "
            f"skipping comparison"
        )
        return []

    baseline_rows = {_row_key(row): row for row in baseline.get("results", [])}
    failures: list[str] = []
    for row in current.get("results", []):
        key = _row_key(row)
        reference = baseline_rows.get(key)
        if reference is None:
            print(f"  ~ {result_path.name} {key}: no baseline row; skipping")
            continue
        now = _normalized(row, current)
        then = _normalized(reference, baseline)
        if now is None or then is None or then == 0:
            print(f"  ~ {result_path.name} {key}: missing timing data; skipping")
            continue
        if reference.get("seconds", 0.0) < NOISE_FLOOR_SECONDS:
            print(
                f"  ~ {result_path.name} {key}: baseline {reference.get('seconds', 0.0):.3f}s "
                f"below {NOISE_FLOOR_SECONDS:.2f}s noise floor; reported, not gated"
            )
            continue
        if _is_parallel(row) and current.get("cpu_count") != baseline.get("cpu_count"):
            print(
                f"  ~ {result_path.name} {key}: parallel row, baseline cpu_count="
                f"{baseline.get('cpu_count')} != current {current.get('cpu_count')}; "
                f"reported, not gated (regenerate the baseline on this runner class)"
            )
            continue
        ratio = now / then
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{result_path.name} {key}: normalized runtime {ratio:.2f}x baseline "
                f"(tolerance {1.0 + tolerance:.2f}x)"
            )
        elif ratio < 1.0 - tolerance:
            verdict = "improvement"
        print(
            f"  {result_path.name} {key}: {row['seconds']:.3f}s, "
            f"{ratio:.2f}x baseline (normalized) -> {verdict}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", type=Path, default=REPO_ROOT / "benchmarks" / "results"
    )
    parser.add_argument(
        "--baselines", type=Path, default=REPO_ROOT / "benchmarks" / "baselines"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    result_files = sorted(args.results.glob("BENCH_*.json"))
    if not result_files:
        print(f"no BENCH_*.json found under {args.results}; nothing to gate")
        return 0

    # Runner-class baselines take precedence: parallel rows can only
    # gate against a matching cpu_count, so each class commits its own.
    class_dir = args.baselines / f"cpu{os.cpu_count()}"
    failures: list[str] = []
    for result_path in result_files:
        baseline_path = class_dir / result_path.name
        if not baseline_path.exists():
            baseline_path = args.baselines / result_path.name
        if not baseline_path.exists():
            print(
                f"  ~ {result_path.name}: no committed baseline; passing "
                f"(commit one under {class_dir.name}/ or the baselines root to gate)"
            )
            continue
        failures.extend(check_file(result_path, baseline_path, args.tolerance))

    if failures:
        print("\nbenchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
