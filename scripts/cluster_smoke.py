#!/usr/bin/env python3
"""Cluster smoke: real CLI processes over loopback TCP, kill one mid-run.

Boots the exact deployment the README's two-machine quickstart describes,
except both "machines" are loopback::

    hypdb serve --shards 0 --cluster-token <tok> --port <P>   # router
    hypdb shard --join http://127.0.0.1:<P> --token <tok>     # node alpha
    hypdb shard --join http://127.0.0.1:<P> --token <tok>     # node beta

then asserts, against an in-process single-service control:

1. both nodes appear live in ``GET /v2/cluster`` after the TCP join
   handshake;
2. every response through the remote topology is byte-identical to the
   single process -- cold, then warm (cache hits on the nodes);
3. after SIGKILL-ing one node mid-run, the router's heartbeat reaper
   detects the death, fails the node's datasets over, and every request
   keeps answering byte-identically;
4. observability holds across the whole drill: the router's
   ``GET /metrics`` scrape aggregates every live node under a ``shard``
   label (and keeps answering after the kill), one ``X-Repro-Trace`` id
   spans the router's and a node's trace logs, and
   ``scripts/check_trace_invariants.py`` passes over the traces the
   drill left behind.

Exits non-zero on any failure; run via ``make cluster`` or the
``cluster-smoke`` CI lane.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.report import canonical_json_bytes  # noqa: E402
from repro.datasets import staples_data  # noqa: E402
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE  # noqa: E402
from repro.obs.trace import TRACE_HEADER  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402
from repro.service.core import AnalysisService  # noqa: E402
from repro.service.http import make_server  # noqa: E402

TOKEN = "cluster-smoke-token"
SQL_VARIANTS = (
    "SELECT Income, avg(Price) FROM t GROUP BY Income",
    "SELECT Region, avg(Price) FROM t GROUP BY Region",
    "SELECT Income, Region, avg(Price) FROM t GROUP BY Income, Region",
)
BOOT_TIMEOUT = 120.0
FAILOVER_TIMEOUT = 60.0


def free_port() -> int:
    """Reserve an ephemeral loopback port (released for the child to bind)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def launch(arguments: list[str]) -> subprocess.Popen:
    """Start one CLI process with ``src/`` importable, logs passed through."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        str(REPO_ROOT / "src")
        + (os.pathsep + environment["PYTHONPATH"] if "PYTHONPATH" in environment else "")
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *arguments],
        cwd=REPO_ROOT,
        env=environment,
    )


def wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.2)
    raise SystemExit(f"FAIL: {what} (after {timeout:.0f}s)")


def live_nodes(client: ServiceClient) -> dict:
    """name -> live flag from ``GET /v2/cluster`` ({} while booting)."""
    try:
        status, body = client.request_bytes("/v2/cluster")
    except ServiceError:
        return {}
    if status != 200:
        return {}
    import json

    return {
        name: node["live"] for name, node in json.loads(body)["nodes"].items()
    }


def columns_for(seed: int) -> dict:
    table = staples_data(n_rows=1500, seed=seed)
    return {name: table.column(name) for name in table.columns}


def result_bytes(client: ServiceClient, dataset: str, sql: str) -> bytes:
    return canonical_json_bytes(client.query(dataset, sql)["result"])


def scrape_metrics(base_url: str) -> tuple[str, str]:
    """(content-type, exposition text) of one router/service /metrics GET."""
    with urllib.request.urlopen(base_url + "/metrics", timeout=60) as response:
        assert response.status == 200, f"/metrics answered {response.status}"
        return response.headers["Content-Type"], response.read().decode("utf-8")


def trace_scopes(trace_dir: str, trace_id: str) -> set:
    """Scopes (processes) whose JSONL logs recorded ``trace_id``."""
    scopes = set()
    for path in Path(trace_dir).glob("trace-*.jsonl"):
        for line in path.read_text(encoding="utf-8").splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("trace_id") == trace_id:
                scopes.add(record.get("scope"))
    return scopes


def main() -> int:
    port = free_port()
    router_url = f"http://127.0.0.1:{port}"
    processes: list[subprocess.Popen] = []
    trace_dir = tempfile.mkdtemp(prefix="hypdb-cluster-traces-")

    control_service = AnalysisService()
    control_server = make_server(control_service)
    threading.Thread(target=control_server.serve_forever, daemon=True).start()
    control = ServiceClient(
        "http://127.0.0.1:%d" % control_server.server_address[1]
    )

    try:
        processes.append(
            launch(
                ["serve", "--shards", "0", "--cluster-token", TOKEN,
                 "--port", str(port), "--trace-log", trace_dir]
            )
        )
        for name in ("alpha", "beta"):
            processes.append(
                launch(
                    ["shard", "--join", router_url, "--token", TOKEN,
                     "--name", name, "--trace-log", trace_dir]
                )
            )
        cluster = ServiceClient(router_url, timeout=60)

        # -- 1. both nodes join over TCP --------------------------------
        wait_for(
            lambda: sorted(
                name for name, live in live_nodes(cluster).items() if live
            ) == ["alpha", "beta"],
            BOOT_TIMEOUT,
            "router + both nodes did not come up",
        )
        print(f"cluster up: router on {router_url}, nodes alpha + beta joined")

        # -- 2. byte identity, cold then warm ---------------------------
        datasets = {"smoke_a": columns_for(3), "smoke_b": columns_for(4)}
        for name, cols in datasets.items():
            cluster.register(name, columns=cols)
            control.register(name, columns=cols)
        expected = {}
        for name in sorted(datasets):
            for sql in SQL_VARIANTS:
                expected[(name, sql)] = result_bytes(control, name, sql)
                assert result_bytes(cluster, name, sql) == expected[(name, sql)], (
                    f"cold bytes diverged for {name}: {sql}"
                )
        for (name, sql), payload in expected.items():
            response = cluster.query(name, sql)
            assert response["cached"] is True, f"expected warm hit for {name}"
            assert canonical_json_bytes(response["result"]) == payload
        print(f"byte identity: {len(expected)} specs, cold + warm, all identical")

        # -- 3. /metrics aggregation over the live ring ------------------
        content_type, text = scrape_metrics(router_url)
        assert content_type == PROMETHEUS_CONTENT_TYPE, content_type
        for family in (
            "repro_router_requests_total",
            "repro_router_warm_hits_total",
            "repro_router_live_shards",
        ):
            assert family in text, f"router scrape missing {family}"
        for name in ("alpha", "beta"):
            assert f'repro_service_requests_total{{shard="{name}"}}' in text, (
                f"router scrape not aggregating node {name}"
            )
        print("metrics: router scrape is valid exposition, "
              "both nodes aggregated under shard labels")

        # -- 4. SIGKILL one node mid-run; heartbeat-driven failover -----
        victim = processes[1]  # alpha
        victim.send_signal(signal.SIGKILL)
        wait_for(
            lambda: live_nodes(cluster).get("alpha") is False,
            FAILOVER_TIMEOUT,
            "router never marked the killed node dead",
        )
        for (name, sql), payload in expected.items():
            assert result_bytes(cluster, name, sql) == payload, (
                f"post-kill bytes diverged for {name}: {sql}"
            )
        print("failover: node alpha SIGKILLed, router reaped it, "
              "all answers still byte-identical")

        # -- 5. observability survives the kill --------------------------
        _content_type, text = scrape_metrics(router_url)
        assert 'repro_service_requests_total{shard="beta"}' in text, (
            "surviving node missing from the post-kill scrape"
        )
        assert 'shard="alpha"' not in text, (
            "dead node still present in the post-kill scrape"
        )
        trace_id = "feedc0defeedc0de"
        name = sorted(datasets)[0]
        body = json.dumps(
            {"dataset": name, "sql": SQL_VARIANTS[0]}
        ).encode("utf-8")
        request = urllib.request.Request(
            router_url + "/query",
            data=body,
            headers={"Content-Type": "application/json", TRACE_HEADER: trace_id},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 200
            assert response.headers[TRACE_HEADER] == trace_id, (
                "router did not echo the inbound trace id"
            )
        # Each hop appends its JSONL record just after answering, so
        # poll until the id shows up in two process logs (router + node).
        wait_for(
            lambda: len(trace_scopes(trace_dir, trace_id)) >= 2,
            30.0,
            "trace id never spanned the router and a node log",
        )
        scopes = trace_scopes(trace_dir, trace_id)
        assert "router" in scopes, f"router log missing the trace: {scopes}"
        checker = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "check_trace_invariants.py"),
                trace_dir,
            ],
            capture_output=True,
            text=True,
        )
        if checker.returncode != 0:
            sys.stderr.write(checker.stdout + checker.stderr)
            raise SystemExit("FAIL: trace invariant checker rejected the drill")
        print(f"tracing: id {trace_id} spans {sorted(scopes)}; "
              f"invariant checker passed ({checker.stdout.strip()})")
        print("cluster smoke passed")
        return 0
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
        control_server.shutdown()
        control_server.server_close()
        control_service.close()
        shutil.rmtree(trace_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
