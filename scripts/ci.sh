#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: lint, coverage-gated fast
# lane, slow lane, smoke benchmarks, regression gate.  `make ci` runs
# this script, so a green local run means a green CI run (modulo runner
# speed).  Tools CI installs via pip (ruff, pytest-cov) are skipped with
# a notice when absent locally.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Keep in sync with the --cov-fail-under in .github/workflows/ci.yml.
COV_FLOOR="${REPRO_COV_FLOOR:-90}"

echo "== lint (ruff) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks scripts
else
    echo "ruff not installed; skipping lint (CI runs it -- 'pip install ruff' to match)"
fi

echo "== workflow lint: actions SHA-pinned, jobs time-boxed =="
python scripts/check_workflows.py

echo "== docstring coverage: public service + engine definitions =="
python scripts/check_docstrings.py

echo "== fast lane: tier-1 tests, no slow markers (coverage-gated) =="
if python -c "import pytest_cov" >/dev/null 2>&1; then
    python -m pytest -x -q -m "not slow" --durations=10 \
        --cov=repro --cov-report=term --cov-fail-under="$COV_FLOOR"
else
    echo "pytest-cov not installed; running without the coverage gate" \
         "(CI enforces --cov-fail-under=$COV_FLOOR -- 'pip install pytest-cov' to match)"
    python -m pytest -x -q -m "not slow"
fi

echo "== slow lane: permutation-heavy statistical tests =="
python -m pytest -q -m slow

echo "== sharded smoke: router + shards, byte identity + failover example =="
python examples/sharded_client.py

echo "== replicated smoke: K=2 fan-out, read balancing, zero-recompute failover =="
python examples/replicated_client.py

echo "== chaos lane: fault injection (journal, job failover, self-heal) =="
python -m pytest -q \
    tests/service/test_durable_jobs.py \
    tests/service/test_job_failover.py \
    tests/service/test_self_heal.py
python examples/durable_client.py

echo "== cluster smoke: CLI router + remote nodes over TCP, kill a node mid-run =="
python scripts/cluster_smoke.py

echo "== smoke benchmarks: engine scaling + service + dataset plane + shards + replication + durability + remote nodes + observability =="
REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-0.25}" \
    python -m pytest -q \
        benchmarks/bench_engine_scaling.py \
        benchmarks/bench_service_throughput.py \
        benchmarks/bench_dataset_plane.py \
        benchmarks/bench_shard_scaling.py \
        benchmarks/bench_replication.py \
        benchmarks/bench_durability.py \
        benchmarks/bench_remote_nodes.py \
        benchmarks/bench_observability.py

echo "== benchmark regression gate =="
python scripts/check_bench_regression.py

echo "CI checks passed"
