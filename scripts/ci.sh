#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: lint, fast lane, slow lane,
# smoke benchmark, regression gate.  `make ci` runs this script, so a
# green local run means a green CI run (modulo runner speed).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint (ruff) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks scripts
else
    echo "ruff not installed; skipping lint (CI runs it -- 'pip install ruff' to match)"
fi

echo "== fast lane: tier-1 tests, no slow markers =="
python -m pytest -x -q -m "not slow"

echo "== slow lane: permutation-heavy statistical tests =="
python -m pytest -q -m slow

echo "== smoke benchmark: engine scaling =="
REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-0.25}" \
    python -m pytest benchmarks/bench_engine_scaling.py -q

echo "== benchmark regression gate =="
python scripts/check_bench_regression.py

echo "CI checks passed"
