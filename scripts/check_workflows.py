#!/usr/bin/env python3
"""Workflow lint: every GitHub Action pinned to a full commit SHA.

Usage::

    python scripts/check_workflows.py [--workflows .github/workflows]

Checks every ``*.yml`` / ``*.yaml`` under the workflows directory:

* **SHA pinning** -- each ``uses:`` reference must be pinned to a full
  40-hex commit SHA (``owner/repo@<sha>``), not a mutable tag or branch.
  Tags can be moved (or, after an org compromise, replaced), so a tag
  reference lets third-party code change under CI silently; a commit SHA
  cannot.  A trailing ``# vX.Y.Z`` comment documents what the SHA is.
  Local composite actions (``./path``) and ``docker://`` images carry no
  tag-moving risk and are exempt.
* **structure** -- when PyYAML is importable the file must also parse,
  declare ``on:`` triggers, and give every job a ``timeout-minutes``
  (a hung job without one burns the runner budget for 6 hours).

Stdlib-only (PyYAML optional), exits non-zero listing every violation.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: owner/repo(/subdir)@40-hex-sha, optionally followed by a comment.
_PINNED = re.compile(
    r"^[A-Za-z0-9_.-]+/[A-Za-z0-9_.-]+(?:/[A-Za-z0-9_./-]+)?@[0-9a-f]{40}$"
)
_USES_LINE = re.compile(r"^\s*(?:-\s+)?uses:\s*(.+?)\s*$")


def _reference(raw: str) -> str:
    """The action reference with quotes and trailing comment stripped."""
    value = raw.strip().strip("'\"")
    if " #" in value:
        value = value.split(" #", 1)[0].rstrip()
    return value


def check_pins(path: Path) -> list[str]:
    """SHA-pinning violations for one workflow file (line-based: works
    without a YAML parser and reports exact line numbers)."""
    problems = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = _USES_LINE.match(line)
        if match is None:
            continue
        reference = _reference(match.group(1))
        if reference.startswith("./") or reference.startswith("docker://"):
            continue
        if not _PINNED.match(reference):
            problems.append(
                f"{path.name}:{number}: uses '{reference}' is not pinned to a "
                f"full commit SHA (owner/repo@<40-hex>  # vX.Y.Z)"
            )
    return problems


def check_structure(path: Path) -> list[str]:
    """Parse-level checks (only when PyYAML is available)."""
    try:
        import yaml
    except ImportError:  # pragma: no cover - stdlib-only environments
        return []
    try:
        document = yaml.safe_load(path.read_text())
    except yaml.YAMLError as error:
        return [f"{path.name}: does not parse as YAML ({error})"]
    if not isinstance(document, dict):
        return [f"{path.name}: expected a mapping at the top level"]
    problems = []
    # PyYAML reads the unquoted key ``on:`` as the boolean True.
    if "on" not in document and True not in document:
        problems.append(f"{path.name}: no 'on:' triggers")
    jobs = document.get("jobs")
    if not isinstance(jobs, dict) or not jobs:
        problems.append(f"{path.name}: no jobs defined")
        return problems
    for name, job in jobs.items():
        if isinstance(job, dict) and "timeout-minutes" not in job:
            problems.append(
                f"{path.name}: job '{name}' has no timeout-minutes "
                f"(a hung run would burn the 6h default)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workflows",
        type=Path,
        default=REPO_ROOT / ".github" / "workflows",
    )
    args = parser.parse_args(argv)

    files = sorted(
        list(args.workflows.glob("*.yml")) + list(args.workflows.glob("*.yaml"))
    )
    if not files:
        print(f"no workflow files under {args.workflows}; nothing to check")
        return 0

    problems: list[str] = []
    for path in files:
        problems.extend(check_pins(path))
        problems.extend(check_structure(path))
        print(f"  checked {path.name}")

    if problems:
        print("\nworkflow lint FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"workflow lint passed ({len(files)} files, all actions SHA-pinned)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
