"""The API reference cannot rot: every dispatched route must be documented.

Extracts the route literals actually dispatched by the two HTTP handlers
(``service/http.py`` and ``service/shard/router.py``) straight from
their sources with ``ast`` -- path comparisons and ``startswith``
prefixes inside ``do_GET``/``do_POST`` -- plus the v1 spec paths from
``_V1_SPECS``, and asserts each appears in ``docs/API.md``.  Adding an
endpoint without documenting it fails here.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.service.http import _V1_SPECS

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
API_DOC = REPO_ROOT / "docs" / "API.md"
HANDLER_SOURCES = (
    REPO_ROOT / "src" / "repro" / "service" / "http.py",
    REPO_ROOT / "src" / "repro" / "service" / "shard" / "router.py",
)


def _dispatched_routes(source_path: Path) -> set[str]:
    """Route literals the file's do_GET/do_POST handlers dispatch on."""
    tree = ast.parse(source_path.read_text(encoding="utf-8"))
    routes: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef) or node.name not in (
            "do_GET",
            "do_POST",
        ):
            continue
        for child in ast.walk(node):
            # `parts.path == "/health"` / `self.path == "/register"`
            if isinstance(child, ast.Compare):
                for comparator in child.comparators:
                    if (
                        isinstance(comparator, ast.Constant)
                        and isinstance(comparator.value, str)
                        and comparator.value.startswith("/")
                    ):
                        routes.add(comparator.value)
            # `parts.path.startswith("/v2/jobs/")`
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "startswith"
            ):
                for argument in child.args:
                    if (
                        isinstance(argument, ast.Constant)
                        and isinstance(argument.value, str)
                        and argument.value.startswith("/")
                    ):
                        routes.add(argument.value)
    return routes


def test_every_dispatched_route_is_documented():
    doc = API_DOC.read_text(encoding="utf-8")
    routes: set[str] = set(_V1_SPECS)
    for source in HANDLER_SOURCES:
        routes |= _dispatched_routes(source)
    assert routes, "route extraction found nothing -- the handlers moved?"
    # Sanity: the extraction really sees both API generations.
    assert "/health" in routes and "/v2/batch" in routes and "/analyze" in routes
    undocumented = sorted(route for route in routes if route not in doc)
    assert not undocumented, (
        f"routes dispatched by the handlers but missing from docs/API.md: "
        f"{undocumented}"
    )


def test_v1_successors_are_documented():
    """Every deprecated v1 path's successor header target is in the doc."""
    from repro.service.http import V1_SUCCESSORS

    doc = API_DOC.read_text(encoding="utf-8")
    for path, successor in V1_SUCCESSORS.items():
        assert path in doc and successor in doc, (path, successor)
    assert "Deprecation: true" in doc
    assert 'rel="successor-version"' in doc


def test_job_durability_semantics_are_documented():
    """The durability lifecycle replaced the old sharp edge, everywhere.

    The contract: journaled restarts resume jobs byte-identically
    (``--job-journal``), the router re-homes a dead shard's jobs under
    stable public ids, ``--heal`` respawns workers, a genuinely lost id
    raises ``JobLostError``, and 503s carry ``Retry-After``.
    """
    api = API_DOC.read_text(encoding="utf-8")
    assert "Durable jobs and failover" in api
    assert "--job-journal" in api
    assert "--heal" in api
    assert "JobLostError" in api
    assert "Retry-After" in api
    # The old contract is gone: jobs no longer die with their shard.
    assert "Jobs are process-local state" not in api
    assert "404 after failover" not in api
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "--job-journal" in readme and "--heal" in readme
    assert "JobLostError" in readme
    assert "404 after failover" not in readme
    architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    assert "## Failure handling" in architecture
    assert "journal" in architecture and "REPRO_FAULTS" in architecture


def test_readme_links_the_docs_tier():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for target in ("docs/ARCHITECTURE.md", "docs/API.md", "docs/BENCHMARKS.md"):
        assert target in readme, f"README.md must link {target}"
        assert (REPO_ROOT / target).is_file(), f"{target} is linked but missing"
