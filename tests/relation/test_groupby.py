"""Unit tests for group-by-average evaluation (Listing 1)."""

from __future__ import annotations

import pytest

from repro.relation.groupby import group_by_average
from repro.relation.predicates import Eq
from repro.relation.table import Table


@pytest.fixture
def table() -> Table:
    return Table.from_columns(
        {
            "T": ["a", "a", "b", "b", "b"],
            "X": ["p", "q", "p", "q", "q"],
            "Y": [1, 0, 1, 1, 0],
        }
    )


class TestGroupByAverage:
    def test_single_group_column(self, table):
        result = group_by_average(table, ["T"], ["Y"])
        assert result.average(("a",)) == pytest.approx(0.5)
        assert result.average(("b",)) == pytest.approx(2 / 3)

    def test_counts_reported(self, table):
        result = group_by_average(table, ["T"], ["Y"])
        by_key = {row.key: row.count for row in result}
        assert by_key == {("a",): 2, ("b",): 3}

    def test_multiple_group_columns(self, table):
        result = group_by_average(table, ["T", "X"], ["Y"])
        assert result.average(("b", "q")) == pytest.approx(0.5)
        assert len(result) == 4

    def test_where_clause_applies_first(self, table):
        result = group_by_average(table, ["T"], ["Y"], where=Eq("X", "q"))
        assert result.average(("a",)) == pytest.approx(0.0)
        assert result.average(("b",)) == pytest.approx(0.5)

    def test_empty_group_columns_single_group(self, table):
        result = group_by_average(table, [], ["Y"])
        assert len(result) == 1
        assert result.average(()) == pytest.approx(3 / 5)

    def test_multiple_value_columns(self):
        table = Table.from_columns({"T": [0, 0, 1], "A": [1, 0, 1], "B": [2, 4, 6]})
        result = group_by_average(table, ["T"], ["A", "B"])
        assert result.average((0,), "A") == pytest.approx(0.5)
        assert result.average((0,), "B") == pytest.approx(3.0)

    def test_missing_group_raises(self, table):
        result = group_by_average(table, ["T"], ["Y"])
        with pytest.raises(KeyError):
            result.average(("zzz",))

    def test_rows_sorted_deterministically(self, table):
        result = group_by_average(table, ["T", "X"], ["Y"])
        assert result.keys() == sorted(result.keys(), key=repr)

    def test_as_dicts(self, table):
        dicts = group_by_average(table, ["T"], ["Y"]).as_dicts()
        assert dicts[0]["T"] == "a"
        assert "avg(Y)" in dicts[0]
        assert dicts[0]["count"] == 2

    def test_format_contains_header_and_rows(self, table):
        rendered = group_by_average(table, ["T"], ["Y"]).format()
        assert "avg(Y)" in rendered
        assert "a" in rendered and "b" in rendered
