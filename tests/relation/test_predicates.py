"""Unit tests for the WHERE-clause predicate AST."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relation.predicates import (
    And,
    Eq,
    Ge,
    Gt,
    In,
    Le,
    Lt,
    Ne,
    Not,
    NotIn,
    Or,
    TRUE,
    conjunction,
)
from repro.relation.table import Table


@pytest.fixture
def table() -> Table:
    return Table.from_columns(
        {
            "Carrier": ["AA", "UA", "AA", "DL", "UA"],
            "Delay": [10, 0, 25, 5, 40],
        }
    )


class TestAtoms:
    def test_eq(self, table):
        np.testing.assert_array_equal(
            Eq("Carrier", "AA").mask(table), [True, False, True, False, False]
        )

    def test_eq_unknown_value_matches_nothing(self, table):
        assert not Eq("Carrier", "ZZ").mask(table).any()

    def test_ne(self, table):
        np.testing.assert_array_equal(
            Ne("Carrier", "AA").mask(table), [False, True, False, True, True]
        )

    def test_in(self, table):
        np.testing.assert_array_equal(
            In("Carrier", ["AA", "DL"]).mask(table), [True, False, True, True, False]
        )

    def test_in_empty_list_matches_nothing(self, table):
        assert not In("Carrier", []).mask(table).any()

    def test_not_in(self, table):
        np.testing.assert_array_equal(
            NotIn("Carrier", ["AA"]).mask(table), [False, True, False, True, True]
        )

    def test_comparisons(self, table):
        np.testing.assert_array_equal(
            Lt("Delay", 10).mask(table), [False, True, False, True, False]
        )
        np.testing.assert_array_equal(
            Le("Delay", 10).mask(table), [True, True, False, True, False]
        )
        np.testing.assert_array_equal(
            Gt("Delay", 10).mask(table), [False, False, True, False, True]
        )
        np.testing.assert_array_equal(
            Ge("Delay", 10).mask(table), [True, False, True, False, True]
        )

    def test_comparison_on_string_column_raises(self, table):
        with pytest.raises(TypeError, match="not numeric"):
            Lt("Carrier", 1).mask(table)

    def test_true_matches_everything(self, table):
        assert TRUE.mask(table).all()


class TestCombinators:
    def test_and(self, table):
        predicate = Eq("Carrier", "AA") & Gt("Delay", 15)
        np.testing.assert_array_equal(
            predicate.mask(table), [False, False, True, False, False]
        )

    def test_or(self, table):
        predicate = Eq("Carrier", "DL") | Gt("Delay", 30)
        np.testing.assert_array_equal(
            predicate.mask(table), [False, False, False, True, True]
        )

    def test_not(self, table):
        predicate = ~Eq("Carrier", "AA")
        np.testing.assert_array_equal(
            predicate.mask(table), Ne("Carrier", "AA").mask(table)
        )

    def test_and_flattens_nested(self):
        nested = And([And([Eq("A", 1), Eq("B", 2)]), Eq("C", 3)])
        assert len(nested.operands) == 3

    def test_and_drops_true(self):
        predicate = And([TRUE, Eq("A", 1)])
        assert len(predicate.operands) == 1

    def test_or_flattens_nested(self):
        nested = Or([Or([Eq("A", 1)]), Eq("B", 2)])
        assert len(nested.operands) == 2

    def test_columns_collected(self):
        predicate = And([Eq("A", 1), Or([Eq("B", 2), Not(Eq("C", 3))])])
        assert predicate.columns() == frozenset({"A", "B", "C"})

    def test_conjunction_empty_is_true(self):
        assert conjunction([]) is TRUE

    def test_conjunction_single_passthrough(self):
        atom = Eq("A", 1)
        assert conjunction([atom]) is atom

    def test_predicates_are_hashable_value_objects(self):
        assert Eq("A", 1) == Eq("A", 1)
        assert In("A", [1, 2]) == In("A", (1, 2))
        assert hash(Eq("A", 1)) == hash(Eq("A", 1))
        assert Eq("A", 1) != Eq("A", 2)

    def test_repr_is_sql_like(self):
        predicate = And([In("Carrier", ["AA", "UA"]), Eq("Year", 2008)])
        rendered = repr(predicate)
        assert "Carrier IN" in rendered
        assert "Year = 2008" in rendered
