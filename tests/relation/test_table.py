"""Unit tests for the columnar Table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relation.predicates import Eq, In
from repro.relation.table import Table


class TestConstruction:
    def test_from_columns_encodes_domains_sorted(self):
        table = Table.from_columns({"X": ["b", "a", "b", "c"]})
        assert table.domain("X") == ("a", "b", "c")
        assert table.column("X") == ["b", "a", "b", "c"]

    def test_from_rows_round_trips(self):
        table = Table.from_rows(["A", "B"], [(1, "x"), (2, "y"), (1, "x")])
        assert table.rows() == [(1, "x"), (2, "y"), (1, "x")]

    def test_from_rows_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="columns declared"):
            Table.from_rows(["A", "B"], [(1,)])

    def test_inconsistent_column_lengths_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            Table(
                codes={"A": np.array([0, 1]), "B": np.array([0])},
                domains={"A": (1, 2), "B": (3,)},
            )

    def test_codes_outside_domain_rejected(self):
        with pytest.raises(ValueError, match="outside its domain"):
            Table(codes={"A": np.array([0, 5])}, domains={"A": (1, 2)})

    def test_mixed_type_column_uses_repr_ordering(self):
        table = Table.from_columns({"X": [1, "a", 1, "a"]})
        assert table.domain_size("X") == 2

    def test_empty_table(self):
        table = Table.from_columns({"X": []})
        assert len(table) == 0
        assert table.value_counts(["X"]) == {}

    def test_repr_mentions_shape(self, small_table):
        assert "6 rows" in repr(small_table)
        assert "3 columns" in repr(small_table)


class TestCsv:
    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("A,B\n1,x\n2,y\n")
        table = Table.from_csv(path)
        assert table.rows() == [(1, "x"), (2, "y")]
        # Integers are parsed as ints so avg() works.
        assert table.numeric("A").tolist() == [1.0, 2.0]

    def test_csv_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            Table.from_csv(path)


class TestAccessors:
    def test_unknown_column_raises_keyerror(self, small_table):
        with pytest.raises(KeyError, match="unknown column"):
            small_table.column("missing")

    def test_numeric_rejects_string_columns(self, small_table):
        with pytest.raises(TypeError, match="not numeric"):
            small_table.numeric("T")

    def test_numeric_on_int_column(self, small_table):
        np.testing.assert_allclose(
            small_table.numeric("Y"), [1.0, 0.0, 1.0, 1.0, 0.0, 1.0]
        )

    def test_head_limits_rows(self, small_table):
        assert len(small_table.head(2)) == 2


class TestRelationalOps:
    def test_select_keeps_domains(self, small_table):
        mask = np.array([True, False, True, False, True, False])
        selected = small_table.select(mask)
        assert selected.n_rows == 3
        assert selected.domain("T") == small_table.domain("T")

    def test_select_rejects_bad_mask(self, small_table):
        with pytest.raises(ValueError, match="boolean array"):
            small_table.select(np.array([1, 0, 1, 0, 1, 0]))

    def test_where_none_returns_same_table(self, small_table):
        assert small_table.where(None) is small_table

    def test_where_predicate(self, small_table):
        filtered = small_table.where(Eq("T", "a"))
        assert set(filtered.column("T")) == {"a"}
        assert filtered.n_rows == 3

    def test_project_and_drop(self, small_table):
        assert small_table.project(["T"]).columns == ("T",)
        assert small_table.drop(["T"]).columns == ("Y", "Z")

    def test_rename(self, small_table):
        renamed = small_table.rename({"T": "Treatment"})
        assert "Treatment" in renamed.columns
        assert renamed.column("Treatment") == small_table.column("T")

    def test_with_column_adds_and_overwrites(self, small_table):
        extended = small_table.with_column("W", [9, 8, 7, 6, 5, 4])
        assert extended.column("W") == [9, 8, 7, 6, 5, 4]
        overwritten = extended.with_column("W", [0] * 6)
        assert set(overwritten.column("W")) == {0}

    def test_with_column_length_mismatch(self, small_table):
        with pytest.raises(ValueError, match="6 rows"):
            small_table.with_column("W", [1, 2])

    def test_concat(self, small_table):
        doubled = small_table.concat(small_table)
        assert doubled.n_rows == 12

    def test_concat_schema_mismatch(self, small_table):
        other = Table.from_columns({"X": [1]})
        with pytest.raises(ValueError, match="different column sets"):
            small_table.concat(other)

    def test_take_and_sample(self, small_table, rng):
        taken = small_table.take(np.array([0, 2]))
        assert taken.rows() == [small_table.rows()[0], small_table.rows()[2]]
        sample = small_table.sample_rows(4, rng)
        assert sample.n_rows == 4
        with pytest.raises(ValueError, match="cannot sample"):
            small_table.sample_rows(100, rng)

    def test_shuffled_preserves_multiset(self, small_table, rng):
        shuffled = small_table.shuffled(rng)
        assert sorted(shuffled.rows()) == sorted(small_table.rows())


class TestCountingKernels:
    def test_value_counts(self, small_table):
        counts = small_table.value_counts(["T"])
        assert counts == {("a",): 3, ("b",): 3}

    def test_value_counts_empty_columns(self, small_table):
        assert small_table.value_counts([]) == {(): 6}

    def test_joint_codes_match_value_counts(self, small_table):
        codes, width = small_table.joint_codes(["T", "Z"])
        assert len(codes) == 6
        assert width == len(small_table.value_counts(["T", "Z"]))

    def test_joint_counts_total(self, small_table):
        counts = small_table.joint_counts(["T", "Y", "Z"])
        assert counts.sum() == 6

    def test_joint_counts_agree_with_value_counts(self, small_table):
        dense = small_table.joint_counts(["T", "Z"])
        sparse = small_table.value_counts(["T", "Z"])
        assert sorted(c for c in dense if c > 0) == sorted(sparse.values())

    def test_n_groups_counts_observed_only(self):
        table = Table.from_columns({"A": [0, 0, 1], "B": [0, 0, 1]})
        # Domain product is 4 but only (0,0) and (1,1) are observed.
        assert table.n_groups(["A", "B"]) == 2

    def test_n_groups_empty_columns_is_one(self, small_table):
        assert small_table.n_groups([]) == 1

    def test_group_indices_partition_all_rows(self, small_table):
        groups = small_table.group_indices(["T"])
        total = sum(len(indices) for _, indices in groups)
        assert total == small_table.n_rows
        keys = {key for key, _ in groups}
        assert keys == {("a",), ("b",)}

    def test_group_indices_rows_match_key(self, small_table):
        for key, indices in small_table.group_indices(["T", "Z"]):
            for index in indices:
                row_t = small_table.column("T")[index]
                row_z = small_table.column("Z")[index]
                assert (row_t, row_z) == key

    def test_distinct_sorted(self, small_table):
        assert small_table.distinct(["T"]) == [("a",), ("b",)]

    def test_many_columns_joint_codes_do_not_overflow(self, rng):
        # 20 columns of 50 categories each: the naive radix product would
        # overflow int64; the iterative compression must keep codes valid.
        n = 500
        raw = {f"C{i}": rng.integers(0, 50, n).tolist() for i in range(20)}
        table = Table.from_columns(raw)
        codes, width = table.joint_codes(list(raw))
        assert codes.min() >= 0
        assert codes.max() < width
        assert width <= n

    def test_entropy_cache_is_per_instance(self, small_table):
        cache = small_table.entropy_cache("plugin")
        cache[frozenset({"T"})] = 1.23
        assert small_table.entropy_cache("plugin")[frozenset({"T"})] == 1.23
        # A selection starts with a fresh cache.
        selected = small_table.where(In("T", ["a"]))
        assert frozenset({"T"}) not in selected.entropy_cache("plugin")


class TestVectorizedPaths:
    """The vectorized concat / column / value_counts rewrites must match
    what decode-and-re-encode produced, including selection edge cases."""

    @staticmethod
    def _reference_concat(left: Table, right: Table) -> Table:
        return Table.from_columns(
            {name: left.column(name) + right.column(name) for name in left.columns}
        )

    def test_concat_matches_reencoding(self, small_table):
        fast = small_table.concat(small_table)
        reference = self._reference_concat(small_table, small_table)
        assert fast.columns == reference.columns
        for name in fast.columns:
            assert fast.domain(name) == reference.domain(name)
            np.testing.assert_array_equal(fast.codes(name), reference.codes(name))

    def test_concat_drops_unobserved_domain_values(self, small_table):
        # Selections preserve domains, so "a" stays in the domain of the
        # left part even when no row carries it; re-encoding (the previous
        # implementation) dropped it, and concat must still do so.
        left = small_table.where(Eq("T", "b"))
        right = small_table.where(Eq("T", "b"))
        assert "a" in left.domain("T")
        combined = left.concat(right)
        assert combined.domain("T") == ("b",)
        reference = self._reference_concat(left, right)
        for name in combined.columns:
            assert combined.domain(name) == reference.domain(name)
            np.testing.assert_array_equal(combined.codes(name), reference.codes(name))

    def test_concat_disjoint_domains(self):
        left = Table.from_columns({"X": ["a", "c"]})
        right = Table.from_columns({"X": ["b", "d"]})
        combined = left.concat(right)
        assert combined.domain("X") == ("a", "b", "c", "d")
        assert combined.column("X") == ["a", "c", "b", "d"]

    def test_concat_mixed_types_sorts_by_repr(self):
        left = Table.from_columns({"X": [1, "one"]})
        right = Table.from_columns({"X": [2]})
        combined = left.concat(right)
        reference = self._reference_concat(left, right)
        assert combined.domain("X") == reference.domain("X")
        assert combined.column("X") == [1, "one", 2]

    def test_concat_empty_side(self, small_table):
        empty = small_table.select(np.zeros(small_table.n_rows, dtype=bool))
        combined = empty.concat(small_table)
        reference = self._reference_concat(empty, small_table)
        for name in combined.columns:
            assert combined.domain(name) == reference.domain(name)
            np.testing.assert_array_equal(combined.codes(name), reference.codes(name))

    def test_column_decodes_python_objects(self, small_table):
        values = small_table.column("Y")
        assert values == [1, 0, 1, 1, 0, 1]
        assert all(type(value) is int for value in values)

    def test_value_counts_keys_in_lexicographic_code_order(self, small_table):
        counts = small_table.value_counts(["T", "Z"])
        assert list(counts) == sorted(counts)  # ascending joint-code order
        assert all(type(count) is int for count in counts.values())

    def test_value_counts_on_selection(self, small_table):
        filtered = small_table.where(Eq("T", "a"))
        assert filtered.value_counts(["T"]) == {("a",): 3}
        empty = small_table.select(np.zeros(small_table.n_rows, dtype=bool))
        assert empty.value_counts(["T"]) == {}

    def test_fingerprint_memoized_and_content_addressed(self, small_table):
        first = small_table.fingerprint()
        assert small_table.fingerprint() is first  # memoized string
        rebuilt = Table.from_columns(
            {name: small_table.column(name) for name in small_table.columns}
        )
        assert rebuilt.fingerprint() == first
        assert small_table.where(Eq("T", "a")).fingerprint() != first
