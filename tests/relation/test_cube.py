"""Unit tests for the OLAP data cube."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relation.cube import DataCube
from repro.relation.table import Table


@pytest.fixture
def table(rng) -> Table:
    n = 2000
    return Table.from_columns(
        {
            "A": rng.integers(0, 3, n).tolist(),
            "B": rng.integers(0, 2, n).tolist(),
            "C": rng.integers(0, 4, n).tolist(),
        }
    )


class TestDataCube:
    def test_cuboid_count_is_power_of_two(self, table):
        cube = DataCube(table, ["A", "B", "C"])
        assert cube.n_cuboids() == 8

    def test_counts_match_direct_scan(self, table):
        cube = DataCube(table, ["A", "B", "C"])
        for columns in (["A"], ["B", "C"], ["A", "B", "C"], []):
            assert cube.counts(columns) == table.value_counts(columns)

    def test_counts_respect_requested_column_order(self, table):
        cube = DataCube(table, ["A", "B", "C"])
        forward = cube.counts(["A", "B"])
        backward = cube.counts(["B", "A"])
        for (a, b), count in forward.items():
            assert backward[(b, a)] == count

    def test_grand_total(self, table):
        cube = DataCube(table, ["A", "B"])
        assert cube.counts([]) == {(): table.n_rows}

    def test_uncovered_request_raises(self, table):
        cube = DataCube(table, ["A", "B"])
        with pytest.raises(KeyError, match="cannot answer"):
            cube.counts(["C"])

    def test_covers(self, table):
        cube = DataCube(table, ["A", "B"])
        assert cube.covers(["A"])
        assert cube.covers(["B", "A"])
        assert not cube.covers(["C"])

    def test_attribute_limit_enforced(self, table):
        with pytest.raises(ValueError, match="exceeds the limit"):
            DataCube(table, ["A", "B", "C"], max_attributes=2)

    def test_duplicate_attributes_rejected(self, table):
        with pytest.raises(ValueError, match="distinct"):
            DataCube(table, ["A", "A"])

    def test_count_vector_sums_to_n(self, table):
        cube = DataCube(table, ["A", "B", "C"])
        assert sum(cube.count_vector(["A", "C"])) == table.n_rows

    def test_entropy_engine_integration(self, table):
        from repro.infotheory.cache import EntropyEngine

        cube = DataCube(table, ["A", "B", "C"])
        with_cube = EntropyEngine(table, cube=cube)
        without = EntropyEngine(table)
        for columns in (("A",), ("A", "B"), ("A", "B", "C")):
            assert with_cube.entropy(columns) == pytest.approx(without.entropy(columns))
        assert with_cube.stats.cube_answers > 0
        assert with_cube.stats.scan_answers == 0
