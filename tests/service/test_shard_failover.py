"""Failover tests for the shard router tier.

Shard death is degradation, not failure: the router retires the dead
shard from the ring, purges its warm keys, re-registers its datasets on
their successor ring nodes from router-held registration records, and
keeps answering **byte-identically** -- the successor's caches start
cold, but the bytes match because results are deterministic functions of
(dataset content, spec, seed).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient, ServiceError
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"


def _columns(seed):
    table = staples_data(n_rows=300, seed=seed)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture
def cluster3():
    """Three shard workers behind a router, three registered datasets."""
    supervisor = ShardSupervisor(shards=3, start_timeout=120.0)
    backends = supervisor.start()
    router = ShardRouter(backends)
    server = make_router_server(router)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
    for index in range(3):
        client.register(f"d{index}", columns=_columns(30 + index))
    yield supervisor, router, client
    server.shutdown()
    server.server_close()
    supervisor.close()


def _kill(backend):
    backend.process.terminate()
    backend.process.join(timeout=10)


class TestFailover:
    def test_shard_death_reregisters_and_answers_byte_identically(self, cluster3):
        supervisor, router, client = cluster3
        # Cold pass: compute one result per dataset and pin the bytes.
        before = {}
        for index in range(3):
            response = client.query(f"d{index}", SQL)
            assert response["cached"] is False
            before[f"d{index}"] = canonical_json_bytes(response["result"])
        catalog_before = client.request_bytes("/v2/datasets")[1]

        # A finished job on the victim, to probe job-state loss below.
        victim_name = router._registrations["d0"].location
        job_spec = {"kind": "query", "dataset": "d0", "sql": SQL}
        accepted = client.submit(job_spec)
        client.wait(accepted["job_id"], timeout=120)
        assert accepted["job_id"].startswith(f"{victim_name}.")

        _kill(next(b for b in supervisor.backends if b.name == victim_name))

        # Every dataset still answers with the identical bytes; the
        # victim's datasets recompute cold on their ring successors.
        for index in range(3):
            name = f"d{index}"
            response = client.query(name, SQL)
            assert canonical_json_bytes(response["result"]) == before[name]
        moved = router._registrations["d0"]
        assert moved.location != victim_name
        assert not router._backends[moved.location].dead
        # The post-failover recompute on the successor was cold.
        assert client.query("d0", SQL)["cached"] is True  # and now warm again

        stats = client.stats()["router"]
        assert stats["failovers"] >= 1
        assert victim_name not in stats["live_shards"]
        assert len(stats["live_shards"]) == 2

        # The catalog survives (served from router records, not shards).
        assert client.request_bytes("/v2/datasets")[1] == catalog_before

        # Jobs survive their shard: the router re-submits the recorded
        # spec to the survivor and the public id stays readable, with
        # the same bytes (results are deterministic).
        finished = client.wait(accepted["job_id"], timeout=120)
        assert finished["job"]["id"] == accepted["job_id"]
        assert canonical_json_bytes(finished["result"]) == before["d0"]
        assert client.stats()["router"]["job_failovers"] >= 1

    def test_all_shards_dead_is_503(self, cluster3):
        supervisor, router, client = cluster3
        for backend in supervisor.backends:
            _kill(backend)
        with pytest.raises(ServiceError) as excinfo:
            client.query("d0", SQL)
        assert excinfo.value.status == 503
        assert "no live shards" in excinfo.value.message

    def test_warm_keys_of_the_dead_shard_are_purged(self, cluster3):
        supervisor, router, client = cluster3
        client.query("d1", SQL)
        client.query("d1", SQL)  # records the warm key
        victim_name = router._registrations["d1"].location
        assert len(router.warm_keys) > 0
        _kill(next(b for b in supervisor.backends if b.name == victim_name))
        router.mark_dead(router._backends[victim_name])
        # No warm entry may point at the corpse.
        assert victim_name not in router.warm_keys.locations()
        # And the request still answers (cold, on the successor).
        assert client.query("d1", SQL)["result"]["rows"]


class TestWatcher:
    def test_watch_thread_detects_death_without_traffic(self):
        supervisor = ShardSupervisor(shards=2, start_timeout=120.0)
        backends = supervisor.start()
        router = ShardRouter(backends)
        server = make_router_server(router)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
        try:
            client.register("d", columns=_columns(40))
            supervisor.watch(router.mark_dead, interval=0.2)
            victim = next(
                b for b in backends if b.name == router._registrations["d"].location
            )
            _kill(victim)
            deadline = time.monotonic() + 20
            while not victim.dead and time.monotonic() < deadline:
                time.sleep(0.05)
            assert victim.dead  # the watcher noticed with no request traffic
            # Failover already happened: the first request needs no retry.
            assert client.query("d", SQL)["result"]["rows"]
        finally:
            server.shutdown()
            server.server_close()
            supervisor.close()
