"""Supervisor self-healing: respawn dead shards and re-join the ring.

The heal loop (``watch(..., heal=True, on_respawn=router.rejoin)``)
turns shard death into a transient: the supervisor respawns the worker
under the same name on a fresh port, the router re-admits it to the
ring, background re-replication rebuilds the K target, and -- for a
total-loss cluster -- the rejoined worker adopts datasets that lost
every replica.  All read paths stay byte-identical to a single-process
control throughout, because results are deterministic functions of
(dataset content, spec, seed).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient, ServiceError
from repro.service.core import AnalysisService
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"


def _columns(seed):
    table = staples_data(n_rows=250, seed=seed)
    return {name: table.column(name) for name in table.columns}


def _serve(router):
    server = make_router_server(router)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
    return server, client


def _expected_bytes(source):
    control = AnalysisService()
    try:
        control.register("d", columns=source)
        return control.query("d", SQL).payload  # canonical bytes
    finally:
        control.close()


def _poll(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestRespawnRejoin:
    def test_respawned_shard_rejoins_and_replication_recovers_k(self, tmp_path):
        """Kill one replica of a K=2 dataset, respawn it, rejoin it:
        the placement converges back to two live replicas and the
        restored worker really holds the dataset again."""
        source = _columns(71)
        expected = _expected_bytes(source)
        supervisor = ShardSupervisor(
            shards=2, start_timeout=120.0, job_journal=str(tmp_path)
        )
        backends = supervisor.start()
        router = ShardRouter(backends, replicas=2)
        server, client = _serve(router)
        try:
            client.register("d", columns=source)
            record = router._registrations["d"]
            assert len(record.locations) == 2
            accepted = client.submit({"kind": "query", "dataset": "d", "sql": SQL})
            client.wait(accepted["job_id"], timeout=120)

            victim = record.locations[0]
            backend = supervisor.backend(victim)
            supervisor.kill(victim)
            router.mark_dead(backend)
            assert list(record.locations) == [record.locations[0]]

            supervisor.respawn(backend)
            assert supervisor.respawns == 1
            router.rejoin(backend)
            assert backend.dead is False
            assert client.stats()["router"]["rejoins"] == 1

            # Background re-replication replays the register body onto
            # the fresh worker until the dataset is back at K=2.
            assert _poll(lambda: len(record.locations) == 2)
            assert len(set(record.locations)) == 2
            restored = ServiceClient(backend.url)
            assert "d" in restored.datasets()

            # Reads and the pre-kill job stay byte-identical throughout.
            response = client.query("d", SQL)
            assert canonical_json_bytes(response["result"]) == expected
            finished = client.wait(accepted["job_id"], timeout=120)
            assert finished["job"]["id"] == accepted["job_id"]
            assert canonical_json_bytes(finished["result"]) == expected
        finally:
            server.shutdown()
            server.server_close()
            supervisor.close()

    def test_respawn_refuses_a_live_backend(self):
        supervisor = ShardSupervisor(shards=1, start_timeout=120.0)
        backends = supervisor.start()
        try:
            with pytest.raises(RuntimeError, match="still alive"):
                supervisor.respawn(backends[0])
        finally:
            supervisor.close()


class TestHealLoop:
    def test_watch_heal_converges_without_operator_intervention(self):
        """``--heal`` end to end: the watch thread detects the death,
        marks it dead (failover), respawns the worker, and rejoins it
        -- no manual respawn()/rejoin() calls anywhere."""
        source = _columns(72)
        expected = _expected_bytes(source)
        supervisor = ShardSupervisor(shards=2, start_timeout=120.0)
        backends = supervisor.start()
        router = ShardRouter(backends)
        server, client = _serve(router)
        try:
            client.register("d", columns=source)
            victim = router._registrations["d"].location
            backend = supervisor.backend(victim)
            supervisor.watch(
                router.mark_dead, interval=0.1, heal=True, on_respawn=router.rejoin
            )
            supervisor.kill(victim)

            # One heal-loop pass: death noticed -> failover -> respawn
            # -> rejoin.  Converged means the backend is alive again.
            assert _poll(lambda: supervisor.respawns >= 1 and not backend.dead)
            stats = client.stats()["router"]
            assert stats["rejoins"] >= 1
            assert sorted(stats["live_shards"]) == ["s0", "s1"]

            response = client.query("d", SQL)
            assert canonical_json_bytes(response["result"]) == expected
        finally:
            server.shutdown()
            server.server_close()
            supervisor.close()


class TestTotalLoss:
    def test_single_shard_cluster_recovers_from_total_loss(self):
        """Every replica dead: reads 503 until the heal; the rejoined
        worker adopts the orphaned dataset and answers identically."""
        source = _columns(73)
        expected = _expected_bytes(source)
        supervisor = ShardSupervisor(shards=1, start_timeout=120.0)
        backends = supervisor.start()
        router = ShardRouter(backends)
        server, _ = _serve(router)
        client = ServiceClient(
            "http://127.0.0.1:%d" % server.server_address[1], retries=0
        )
        try:
            client.register("d", columns=source)
            before = client.query("d", SQL)
            assert canonical_json_bytes(before["result"]) == expected

            backend = backends[0]
            supervisor.kill("s0")
            router.mark_dead(backend)
            with pytest.raises(ServiceError) as excinfo:
                client.query("d", SQL)
            assert excinfo.value.status == 503

            supervisor.respawn(backend)
            router.rejoin(backend)  # adopts the dataset: no live replica
            response = client.query("d", SQL)
            assert response["cached"] is False  # fresh process, cold
            assert canonical_json_bytes(response["result"]) == expected
            assert client.stats()["router"]["rejoins"] == 1
        finally:
            server.shutdown()
            server.server_close()
            supervisor.close()
