"""Service layer over the dataset plane: pool reuse across requests.

A long-lived :class:`AnalysisService` keeps one engine (one worker pool)
across requests; every request publishes its context tables on the plane
and releases them afterwards.  These tests pin that (a) responses through
the parallel plane are byte-identical to serial responses, cold and warm,
(b) the pool is created once and reused across requests, and (c) requests
do not leak published tables or shared-memory segments.
"""

from __future__ import annotations

import pytest

from repro.datasets import staples_data
from repro.engine import ParallelEngine
from repro.engine import dataplane
from repro.service.core import AnalysisService

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"
PARAMS = {"covariates": ["Distance"], "mediators": [], "seed": 7}


@pytest.fixture(scope="module")
def columns():
    table = staples_data(n_rows=1200, seed=4)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture
def parallel_service(columns):
    # min_tasks=1: even single-task fan-outs go to the pool, so the tests
    # below observe worker behavior regardless of how many query contexts
    # the workload produces.
    service = AnalysisService(engine=ParallelEngine(jobs=2, min_tasks=1))
    service.register("staples", columns=columns)
    yield service
    service.close()


@pytest.fixture
def serial_service(columns):
    service = AnalysisService()
    service.register("staples", columns=columns)
    yield service
    service.close()


class TestPoolReuseAcrossRequests:
    def test_parallel_payload_matches_serial_cold_and_warm(
        self, parallel_service, serial_service
    ):
        serial = serial_service.analyze("staples", SQL, **PARAMS)
        cold = parallel_service.analyze("staples", SQL, **PARAMS)
        warm = parallel_service.analyze("staples", SQL, **PARAMS)
        assert not cold.cached and warm.cached
        assert cold.payload == serial.payload
        assert warm.payload == serial.payload

    def test_one_pool_serves_consecutive_requests(self, parallel_service):
        engine = parallel_service.engine
        parallel_service.analyze("staples", SQL, **PARAMS)
        pool = engine._pool
        assert pool is not None  # the fan-out actually used workers
        # A different request (fresh seed -> cache miss) reuses the pool.
        parallel_service.analyze("staples", SQL, covariates=["Distance"], mediators=[], seed=8)
        assert engine._pool is pool

    def test_requests_release_their_publications(self, parallel_service):
        resident_before = dataplane.resident_count()
        parallel_service.analyze("staples", SQL, **PARAMS)
        assert dataplane.resident_count() == resident_before
        assert parallel_service.engine._published == {}

    def test_distinct_requests_distinct_results_same_plane(self, parallel_service):
        adjusted = parallel_service.analyze("staples", SQL, **PARAMS)
        unadjusted = parallel_service.analyze(
            "staples", SQL, covariates=[], mediators=[], seed=7
        )
        assert adjusted.payload != unadjusted.payload
