"""Tests for the two-level result cache."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import ResultCache


class TestMemoryLayer:
    def test_roundtrip(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", b"payload")
        assert cache.get("k") == b"payload"
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_drops_least_recent(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")  # refresh a; b becomes the LRU tail
        cache.put("c", b"3")
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_clear_keeps_stats(self):
        cache = ResultCache()
        cache.put("k", b"v")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.stores == 1

    def test_concurrent_puts_and_gets(self):
        cache = ResultCache(max_entries=8)

        def worker(tag: int) -> None:
            for i in range(200):
                key = f"k{(tag + i) % 16}"
                cache.put(key, key.encode())
                got = cache.get(key)
                assert got is None or got == key.encode()

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 8


class TestDiskLayer:
    def test_disk_roundtrip_and_promotion(self, tmp_path):
        cache = ResultCache(max_entries=1, disk_dir=tmp_path / "cache")
        cache.put("a", b"1")
        cache.put("b", b"2")  # evicts a from memory; both remain on disk
        assert cache.get("a") == b"1"
        assert cache.stats.disk_hits == 1
        # The promotion brought a back into the memory layer.
        assert cache.get("a") == b"1"
        assert cache.stats.memory_hits >= 1

    def test_survives_new_instance(self, tmp_path):
        first = ResultCache(disk_dir=tmp_path / "cache")
        first.put("k", b"persisted")
        second = ResultCache(disk_dir=tmp_path / "cache")
        assert second.get("k") == b"persisted"
        assert second.stats.disk_hits == 1

    def test_memory_only_misses_without_disk(self, tmp_path):
        writer = ResultCache(disk_dir=tmp_path / "cache")
        writer.put("k", b"v")
        memory_only = ResultCache()
        assert memory_only.get("k") is None

    def test_disk_write_failure_degrades_gracefully(self, tmp_path):
        import shutil

        cache = ResultCache(disk_dir=tmp_path / "cache")
        shutil.rmtree(tmp_path / "cache")
        (tmp_path / "cache").write_text("not a directory")
        cache.put("k", b"v")  # disk write fails; must not raise
        assert cache.get("k") == b"v"  # memory layer still serves
        assert cache.stats.disk_errors == 1

    def test_describe_counts_both_layers(self, tmp_path):
        cache = ResultCache(max_entries=1, disk_dir=tmp_path / "cache")
        cache.put("a", b"1")
        cache.put("b", b"2")
        summary = cache.describe()
        assert summary["in_memory"] == 1
        assert summary["on_disk"] == 2
        assert summary["stores"] == 2
