"""Tests for the typed request specs (``repro.service.spec``)."""

from __future__ import annotations

import pytest

from repro.datasets import staples_data
from repro.service.core import AnalysisService
from repro.service.spec import (
    SPEC_TYPES,
    AnalyzeSpec,
    DiscoverSpec,
    QuerySpec,
    SpecError,
    WhatIfSpec,
    spec_from_dict,
)

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"

SPECS = [
    AnalyzeSpec(
        dataset="d",
        sql=SQL,
        covariates=("Distance",),
        mediators=(),
        top_k=3,
        compute_direct=False,
        test="chi2",
        seed=11,
    ),
    QuerySpec(dataset="d", sql=SQL),
    DiscoverSpec(dataset="d", treatment="Income", outcome="Price", seed=5),
    WhatIfSpec(
        dataset="d",
        treatment="Income",
        outcome="Price",
        covariates=("Distance",),
        where_sql="Region IN ('urban')",
    ),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda spec: spec.kind)
    def test_from_dict_to_dict_is_identity(self, spec):
        assert spec_from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=lambda spec: spec.kind)
    def test_to_dict_is_json_shaped(self, spec):
        import json

        payload = spec.to_dict()
        assert payload["kind"] == spec.kind
        assert json.loads(json.dumps(payload)) == payload

    def test_sequences_are_canonicalized_to_tuples(self):
        spec = AnalyzeSpec(dataset="d", sql=SQL, covariates=["Distance"])
        assert spec.covariates == ("Distance",)
        assert spec == AnalyzeSpec(dataset="d", sql=SQL, covariates=("Distance",))

    def test_specs_are_hashable(self):
        assert len({spec_from_dict(spec.to_dict()) for spec in SPECS}) == len(SPECS)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown kind"):
            spec_from_dict({"kind": "explode", "dataset": "d"})
        with pytest.raises(SpecError, match="unknown kind"):
            spec_from_dict({"dataset": "d"})  # kind missing entirely

    def test_non_object_rejected(self):
        with pytest.raises(SpecError, match="JSON object"):
            spec_from_dict(["analyze"])

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown analyze fields.*bogus"):
            AnalyzeSpec.from_dict({"dataset": "d", "sql": SQL, "bogus": 1})

    def test_kind_mismatch_rejected(self):
        with pytest.raises(SpecError, match="expected kind"):
            QuerySpec.from_dict({"kind": "analyze", "dataset": "d", "sql": SQL})

    def test_bad_sql_rejected_at_construction(self):
        with pytest.raises(ValueError):
            QuerySpec(dataset="d", sql="SELECT FROM")

    def test_bad_where_rejected_at_construction(self):
        with pytest.raises(ValueError):
            WhatIfSpec(
                dataset="d", treatment="T", outcome="Y", where_sql="NOT ( VALID"
            )

    @pytest.mark.parametrize(
        "overrides",
        [
            {"dataset": ""},
            {"sql": 5},
            {"covariates": "Distance"},  # a bare string is not a name list
            {"covariates": [1]},
            {"top_k": "2"},
            {"top_k": True},
            {"compute_direct": 1},
            {"alpha": 0.0},
            {"alpha": 2},
            {"test": "bogus"},
            {"seed": 1.5},
        ],
    )
    def test_bad_analyze_fields_rejected(self, overrides):
        payload = {"dataset": "d", "sql": SQL, **overrides}
        with pytest.raises(SpecError):
            AnalyzeSpec.from_dict(payload)

    def test_unknown_test_message_matches_service(self):
        with pytest.raises(SpecError, match="unknown test 'bogus'"):
            DiscoverSpec(dataset="d", treatment="T", test="bogus")

    def test_query_spec_is_seed_free(self):
        assert QuerySpec(dataset="d", sql=SQL).cache_seed() is None
        with pytest.raises(SpecError, match="unknown query fields"):
            QuerySpec.from_dict({"dataset": "d", "sql": SQL, "seed": 1})


class TestCacheKeyCompatibility:
    """Spec keys must address the cache the v1 keyword shims populate."""

    @pytest.fixture(scope="class")
    def service(self):
        table = staples_data(n_rows=600, seed=4)
        service = AnalysisService()
        service.register(
            "staples", columns={name: table.column(name) for name in table.columns}
        )
        return service

    def test_v1_cold_then_spec_execute_is_warm(self, service):
        cold = service.discover("staples", "Income", outcome="Price", test="chi2")
        spec = spec_from_dict(
            {
                "kind": "discover",
                "dataset": "staples",
                "treatment": "Income",
                "outcome": "Price",
                "test": "chi2",
            }
        )
        warm = service.execute(spec)
        assert not cold.cached and warm.cached
        assert warm.payload == cold.payload

    def test_defaults_key_identically_to_explicit_defaults(self, service):
        implicit = QuerySpec(dataset="staples", sql=SQL)
        explicit = QuerySpec.from_dict({"dataset": "staples", "sql": SQL})
        assert implicit.request_key("f" * 64) == explicit.request_key("f" * 64)

    def test_every_kind_has_a_spec_type(self):
        assert sorted(SPEC_TYPES) == ["analyze", "discover", "query", "whatif"]
