"""End-to-end tests for the HTTP JSON API.

The acceptance property for the service layer: for a fixed seed,
``analyze`` over HTTP returns byte-identical JSON to the direct
:class:`HypDB` API -- for both serial and parallel engines, on both the
cold and the warm cache path.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.hypdb import HypDB
from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.engine import ParallelEngine
from repro.service.client import ServiceClient, ServiceError
from repro.service.core import AnalysisService
from repro.service.http import make_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"
ANALYZE_PARAMS = {"covariates": ["Distance"], "mediators": [], "seed": 7}


@pytest.fixture(scope="module")
def table():
    return staples_data(n_rows=1200, seed=4)


@pytest.fixture(scope="module")
def columns(table):
    return {name: table.column(name) for name in table.columns}


@pytest.fixture
def client(columns):
    """A served AnalysisService (serial engine) with staples registered."""
    service = AnalysisService()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    client.register("staples", columns=columns)
    yield client
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestDeterminism:
    def test_serial_cold_and_warm_match_direct_api(self, client, table):
        direct = HypDB(table, seed=7).analyze(SQL, covariates=["Distance"], mediators=[])
        cold = client.analyze("staples", SQL, **ANALYZE_PARAMS)
        warm = client.analyze("staples", SQL, **ANALYZE_PARAMS)
        assert not cold["cached"] and warm["cached"]
        for response in (cold, warm):
            assert canonical_json_bytes(response["result"]) == direct.json_bytes()

    def test_parallel_engine_cold_and_warm_match_direct_api(self, columns, table):
        with ParallelEngine(jobs=2) as engine:
            direct = HypDB(table, seed=7, engine=engine).analyze(
                SQL, covariates=["Distance"], mediators=[]
            )
            service = AnalysisService(engine=engine)
            server = make_server(service)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            try:
                client.register("staples", columns=columns)
                cold = client.analyze("staples", SQL, **ANALYZE_PARAMS)
                warm = client.analyze("staples", SQL, **ANALYZE_PARAMS)
            finally:
                server.shutdown()
                server.server_close()
        assert not cold["cached"] and warm["cached"]
        for response in (cold, warm):
            assert canonical_json_bytes(response["result"]) == direct.json_bytes()


class TestEndpoints:
    def test_health_and_stats(self, client):
        assert client.health() == {"status": "ok"}
        client.query("staples", SQL)
        stats = client.stats()
        assert stats["datasets"][0]["name"] == "staples"
        assert stats["requests"] >= 1

    def test_query_roundtrip(self, client):
        response = client.query("staples", SQL)
        assert response["status"] == "ok"
        assert response["kind"] == "query"
        assert len(response["result"]["rows"]) == 2

    def test_discover_roundtrip(self, client):
        response = client.discover("staples", "Income", outcome="Price", test="chi2")
        assert response["kind"] == "discover"
        assert "covariates" in response["result"]

    def test_whatif_roundtrip(self, client):
        response = client.whatif(
            "staples", "Income", "Price", covariates=["Distance"]
        )
        assert response["kind"] == "whatif"
        assert len(response["result"]["interventions"]) == 2

    def test_batch_roundtrip(self, client):
        response = client.batch(
            [
                {"kind": "query", "dataset": "staples", "sql": SQL},
                {"kind": "query", "dataset": "staples", "sql": SQL},
            ]
        )
        assert [item["cached"] for item in response["results"]] == [False, True]
        assert response["results"][0]["result"] == response["results"][1]["result"]

    def test_register_dedup_over_http(self, client, columns):
        response = client.register("alias", columns=columns)
        assert response["result"]["reused"]


class TestErrors:
    def test_unknown_dataset_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.query("missing", SQL)
        assert excinfo.value.status == 404
        assert "unknown dataset" in excinfo.value.message

    def test_bad_sql_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.query("staples", "SELECT FROM")
        assert excinfo.value.status == 400

    def test_unknown_path_is_404(self, client):
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/nope", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404

    def test_malformed_json_is_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/query", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unexpected_register_field_is_400_without_mutating(self, client, columns):
        with pytest.raises(ServiceError) as excinfo:
            client.register("x", columns=columns, bogus=1)
        assert excinfo.value.status == 400
        # The rejected request must not have registered the dataset.
        with pytest.raises(ServiceError) as lookup:
            client.query("x", SQL)
        assert lookup.value.status == 404

    def test_unexpected_analyze_field_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.analyze("staples", SQL, bogus=1)
        assert excinfo.value.status == 400


class TestConcurrency:
    def test_parallel_clients_share_the_cache(self, client):
        results: list[dict] = []
        errors: list[Exception] = []

        def hit() -> None:
            try:
                results.append(client.query("staples", SQL))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 8
        payloads = {json.dumps(item["result"], sort_keys=True) for item in results}
        assert len(payloads) == 1
        assert client.query("staples", SQL)["cached"]
