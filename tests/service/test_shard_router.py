"""End-to-end tests for the shard router tier.

The contract under test: a sharded deployment (router + N worker
processes) answers **byte-identically** to a single-process service for
every endpoint -- cold and warm, v1 and v2, sync and jobs -- because the
router splices shard response payloads verbatim and results are
deterministic functions of (dataset content, spec, seed).

The cluster fixture spawns real worker processes (``spawn`` start
method), so these tests exercise the full wire path:
client -> router HTTP -> shard HTTP -> AnalysisService.
"""

from __future__ import annotations

import json
import threading
from types import SimpleNamespace

import pytest

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient, ServiceError
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"


def _columns(seed):
    table = staples_data(n_rows=400, seed=seed)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture(scope="module")
def cluster():
    """Two shard workers behind a router, plus a single-process control."""
    supervisor = ShardSupervisor(shards=2, start_timeout=120.0)
    backends = supervisor.start()
    router = ShardRouter(backends)
    router_server = make_router_server(router)
    threading.Thread(target=router_server.serve_forever, daemon=True).start()

    single = AnalysisService()
    single_server = make_server(single)
    threading.Thread(target=single_server.serve_forever, daemon=True).start()

    sharded = ServiceClient("http://127.0.0.1:%d" % router_server.server_address[1])
    direct = ServiceClient("http://127.0.0.1:%d" % single_server.server_address[1])
    for name, seed in (("staples", 11), ("staples2", 12)):
        source = _columns(seed)
        sharded.register(name, columns=source)
        direct.register(name, columns=source)
    yield SimpleNamespace(
        router=router,
        supervisor=supervisor,
        sharded=sharded,
        direct=direct,
    )
    router_server.shutdown()
    router_server.server_close()
    single_server.shutdown()
    single_server.server_close()
    single.close()
    supervisor.close()


def both(cluster, path, body):
    """POST the same body through the router and the single process."""
    raw = json.dumps(body).encode()
    return (
        cluster.sharded.request_bytes(path, raw),
        cluster.direct.request_bytes(path, raw),
    )


def assert_same_envelope(sharded, direct):
    """Envelopes match up to timing: kind, cached flag, and result bytes."""
    status_a, body_a = sharded
    status_b, body_b = direct
    assert status_a == status_b
    parsed_a, parsed_b = json.loads(body_a), json.loads(body_b)
    assert parsed_a["kind"] == parsed_b["kind"]
    assert parsed_a["cached"] == parsed_b["cached"]
    assert canonical_json_bytes(parsed_a["result"]) == canonical_json_bytes(
        parsed_b["result"]
    )


class TestByteIdentity:
    def test_register_responses_are_byte_identical(self, cluster):
        source = _columns(21)
        (status_a, body_a), (status_b, body_b) = both(
            cluster, "/register", {"name": "extra", "columns": source}
        )
        assert (status_a, body_a) == (status_b, body_b) == (200, body_b)

    @pytest.mark.parametrize(
        "path,body",
        [
            ("/query", {"dataset": "staples", "sql": SQL}),
            (
                "/analyze",
                {
                    "dataset": "staples",
                    "sql": SQL,
                    "treatment": "Income",
                    "test": "chi2",
                },
            ),
            (
                "/discover",
                {
                    "dataset": "staples2",
                    "treatment": "Income",
                    "outcome": "Price",
                    "test": "chi2",
                },
            ),
            (
                "/whatif",
                {
                    "dataset": "staples2",
                    "treatment": "Income",
                    "outcome": "Price",
                    "test": "chi2",
                },
            ),
        ],
    )
    def test_every_kind_matches_cold_then_warm(self, cluster, path, body):
        cold = both(cluster, path, body)
        assert_same_envelope(*cold)
        assert json.loads(cold[0][1])["cached"] is False
        warm = both(cluster, path, body)
        assert_same_envelope(*warm)
        assert json.loads(warm[0][1])["cached"] is True

    def test_error_bodies_are_byte_identical(self, cluster):
        cases = [
            ("/query", {"dataset": "ghost", "sql": SQL}, 404),
            ("/query", {"dataset": "staples"}, 400),  # missing sql
            ("/v2/jobs", {"kind": "explode", "dataset": "staples"}, 400),
            ("/v2/jobs", {"kind": "query", "dataset": "ghost", "sql": SQL}, 404),
            ("/v2/batch", {"requests": [{"kind": "explode"}]}, 400),
            ("/v2/batch", {"requests": {"kind": "query"}}, 400),  # not a list
        ]
        for path, body, expected in cases:
            (status_a, body_a), (status_b, body_b) = both(cluster, path, body)
            assert status_a == status_b == expected, path
            assert body_a == body_b, path

    def test_catalog_is_byte_identical(self, cluster):
        status_a, body_a = cluster.sharded.request_bytes("/v2/datasets")
        status_b, body_b = cluster.direct.request_bytes("/v2/datasets")
        assert status_a == status_b == 200
        assert body_a == body_b

    def test_health_is_byte_identical(self, cluster):
        assert cluster.sharded.request_bytes("/health") == cluster.direct.request_bytes(
            "/health"
        )


class TestBatches:
    def test_v2_batch_spans_shards_with_identical_plan_and_results(self, cluster):
        requests = [
            {"kind": "query", "dataset": "staples", "sql": "SELECT Region, avg(Price) FROM t GROUP BY Region"},
            {"kind": "query", "dataset": "staples2", "sql": "SELECT Region, avg(Price) FROM t GROUP BY Region"},
            {"kind": "query", "dataset": "staples", "sql": "SELECT Region, avg(Price) FROM t GROUP BY Region"},
            {"kind": "query", "dataset": "staples2", "sql": "SELECT Income, Region, avg(Price) FROM t GROUP BY Income, Region"},
        ]
        planned_sharded = cluster.sharded.batch_v2(requests)
        planned_direct = cluster.direct.batch_v2(requests)
        assert planned_sharded["plan"] == planned_direct["plan"]
        assert planned_sharded["plan"]["deduplicated"] == 1
        assert planned_sharded["plan"]["datasets"] == 2
        for item_a, item_b in zip(planned_sharded["results"], planned_direct["results"]):
            assert item_a["kind"] == item_b["kind"]
            assert canonical_json_bytes(item_a["result"]) == canonical_json_bytes(
                item_b["result"]
            )

    def test_v1_batch_keeps_the_pinned_duplicate_flags(self, cluster):
        request = {
            "kind": "query",
            "dataset": "staples",
            "sql": "SELECT Distance, avg(Price) FROM t GROUP BY Distance",
        }
        batch_sharded = cluster.sharded.batch([request, request])
        batch_direct = cluster.direct.batch([request, request])
        # The sequential v1 contract: the duplicate is a cache hit.
        assert [item["cached"] for item in batch_sharded["results"]] == [False, True]
        assert [item["cached"] for item in batch_direct["results"]] == [False, True]
        for item_a, item_b in zip(batch_sharded["results"], batch_direct["results"]):
            assert canonical_json_bytes(item_a["result"]) == canonical_json_bytes(
                item_b["result"]
            )

    def test_v1_batch_error_aborts_with_identical_body(self, cluster):
        requests = [
            {"kind": "query", "dataset": "staples", "sql": SQL},
            {"kind": "query", "dataset": "ghost", "sql": SQL},
        ]
        (status_a, body_a), (status_b, body_b) = both(
            cluster, "/batch", {"requests": requests}
        )
        assert status_a == status_b == 404
        assert body_a == body_b

    def test_empty_v2_batch_is_byte_identical(self, cluster):
        (status_a, body_a), (status_b, body_b) = both(
            cluster, "/v2/batch", {"requests": []}
        )
        assert status_a == status_b == 200
        assert body_a == body_b


class TestJobs:
    def test_job_result_matches_single_process_bytes(self, cluster):
        spec = {
            "kind": "query",
            "dataset": "staples2",
            "sql": "SELECT Region, Income, avg(Price) FROM t GROUP BY Region, Income",
        }
        accepted = cluster.sharded.submit(spec)
        assert "." in accepted["job_id"]  # namespaced <shard>.<local id>
        finished = cluster.sharded.wait(accepted["job_id"], timeout=120)
        assert finished["job"]["id"] == accepted["job_id"]
        sync = cluster.direct.submit_and_wait(spec)
        assert canonical_json_bytes(finished["result"]) == canonical_json_bytes(
            sync["result"]
        )

    def test_job_listing_is_namespaced_and_filtered(self, cluster):
        spec = {
            "kind": "query",
            "dataset": "staples",
            "sql": "SELECT Distance, Income, avg(Price) FROM t GROUP BY Distance, Income",
        }
        accepted = cluster.sharded.submit(spec)
        cluster.sharded.wait(accepted["job_id"], timeout=120)
        listing = cluster.sharded.jobs(dataset="staples")
        shard_names = {backend.name for backend in cluster.supervisor.backends}
        assert accepted["job_id"] in [job["id"] for job in listing["jobs"]]
        for job in listing["jobs"]:
            shard, _, local = job["id"].partition(".")
            assert shard in shard_names and local.startswith("j")
            assert job["dataset"] == "staples"

    def test_unknown_and_unroutable_job_ids_are_404(self, cluster):
        for job_id in ("zz.j00000001", "no-dot-id", "s0.j99999999"):
            with pytest.raises(ServiceError) as excinfo:
                cluster.sharded.job(job_id)
            assert excinfo.value.status == 404
            assert job_id in excinfo.value.message

    def test_long_poll_routes_through_the_router(self, cluster):
        spec = {
            "kind": "discover",
            "dataset": "staples",
            "treatment": "Region",
            "outcome": "Price",
            "test": "chi2",
        }
        accepted = cluster.sharded.submit(spec)
        response = cluster.sharded.job(accepted["job_id"], wait=30)
        assert response["job"]["status"] == "done"


class TestWarmRouting:
    def test_duplicates_route_to_the_holding_shard(self, cluster):
        router = cluster.router
        body = {
            "dataset": "staples2",
            "sql": "SELECT Distance, avg(Price) FROM t GROUP BY Distance",
        }
        cold = cluster.sharded.query(**body)
        assert cold["cached"] is False
        with router._lock:
            warm_before = router._warm_hits
        repeats = 10
        for _ in range(repeats):
            assert cluster.sharded.query(**body)["cached"] is True
        with router._lock:
            warm_hits = router._warm_hits - warm_before
        # The acceptance bar: >= 90% of duplicates route via the warm-key
        # map to the shard already holding the bytes.
        assert warm_hits >= 0.9 * repeats

    def test_router_stats_expose_the_routing_counters(self, cluster):
        stats = cluster.sharded.stats()
        router_stats = stats["router"]
        assert router_stats["shards"] == 2
        assert sorted(router_stats["live_shards"]) == ["s0", "s1"]
        assert router_stats["requests"] > 0
        assert router_stats["warm_hits"] > 0
        assert router_stats["datasets"] >= 2
        assert set(stats["shards"]) == {"s0", "s1"}
        for shard_stats in stats["shards"].values():
            assert shard_stats["requests"] >= 0

    def test_v1_requests_counted_at_the_router(self, cluster):
        base = cluster.sharded.stats()["router"]["v1_requests"]
        cluster.sharded.query("staples", SQL)
        assert cluster.sharded.stats()["router"]["v1_requests"] == base + 1

    def test_deprecation_headers_survive_the_router(self, cluster):
        import http.client
        import urllib.parse

        parts = urllib.parse.urlsplit(cluster.sharded.base_url)
        connection = http.client.HTTPConnection(parts.hostname, parts.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/query",
                body=json.dumps({"dataset": "staples", "sql": SQL}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            headers = dict(response.getheaders())
            response.read()
            assert headers["Deprecation"] == "true"
            assert headers["Link"] == '</v2/jobs>; rel="successor-version"'
        finally:
            connection.close()
