"""Unit tests for the consistent-hash ring (shard router tier).

The load-bearing property is *stability*: growing or shrinking the ring
by one node remaps only ~1/N of the key space, so scale-out and
failover never cold-start the whole fleet's caches.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.service.shard.ring import HashRing

#: Uniformly distributed string keys (the ring's real keys are SHA-256
#: dataset fingerprints, which look exactly like this).
KEYS = [hashlib.sha256(f"key-{i}".encode()).hexdigest() for i in range(2000)]


class TestOwnership:
    def test_every_key_is_owned_and_deterministically(self):
        ring = HashRing(["s0", "s1", "s2"])
        owners = {key: ring.node_for(key) for key in KEYS}
        assert set(owners.values()) <= {"s0", "s1", "s2"}
        again = HashRing(["s2", "s0", "s1"])  # membership order is irrelevant
        assert all(again.node_for(key) == owner for key, owner in owners.items())

    def test_load_is_roughly_balanced(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        counts = {node: 0 for node in ring.nodes}
        for key in KEYS:
            counts[ring.node_for(key)] += 1
        # With 64 virtual points per node the max/mean skew stays small;
        # the bound here is loose on purpose (it pins "no starved node",
        # not a precise distribution).
        assert min(counts.values()) > len(KEYS) / len(counts) / 3

    def test_empty_ring_raises(self):
        with pytest.raises(RuntimeError, match="no live shards"):
            HashRing().node_for("anything")


class TestStability:
    def test_adding_a_node_remaps_about_one_nth(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add("s4")
        moved = [key for key in KEYS if ring.node_for(key) != before[key]]
        # ~1/5 of keys move to the new node; allow 2x slack for hash noise.
        assert 0 < len(moved) < 2 * len(KEYS) / 5
        # Every moved key moved TO the new node -- never between old nodes.
        assert {ring.node_for(key) for key in moved} == {"s4"}

    def test_removing_a_node_remaps_only_its_keys(self):
        ring = HashRing(["s0", "s1", "s2"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove("s1")
        for key in KEYS:
            owner = ring.node_for(key)
            if before[key] == "s1":
                assert owner in ("s0", "s2")  # fell to a successor arc
            else:
                assert owner == before[key]  # survivors keep their keys

    def test_add_then_remove_round_trips(self):
        ring = HashRing(["s0", "s1"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add("s2")
        ring.remove("s2")
        assert all(ring.node_for(key) == before[key] for key in KEYS)


class TestSuccessors:
    """``nodes_for``: the replica-placement walk (owner + K-1 successors)."""

    def test_first_node_is_the_owner(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        for key in KEYS[:200]:
            assert ring.nodes_for(key, 1) == (ring.node_for(key),)
            assert ring.nodes_for(key, 3)[0] == ring.node_for(key)

    def test_nodes_are_distinct_and_extend_the_same_walk(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        for key in KEYS[:200]:
            walk = ring.nodes_for(key, 4)
            assert len(set(walk)) == 4
            # Shorter walks are strict prefixes of longer ones.
            for count in range(1, 4):
                assert ring.nodes_for(key, count) == walk[:count]

    def test_successor_becomes_owner_after_removal(self):
        """The failover property replication is built on: kill the owner
        and the new ring owner is exactly the first successor -- i.e. a
        shard that already holds every dataset replicated to K >= 2."""
        ring = HashRing(["s0", "s1", "s2", "s3"])
        for key in KEYS[:500]:
            owner, successor = ring.nodes_for(key, 2)
            shrunk = HashRing([n for n in ring.nodes if n != owner])
            assert shrunk.node_for(key) == successor

    def test_small_ring_returns_fewer_nodes(self):
        ring = HashRing(["s0", "s1"])
        walk = ring.nodes_for(KEYS[0], 5)
        assert sorted(walk) == ["s0", "s1"]

    def test_rejects_bad_count_and_empty_ring(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError, match="count"):
            ring.nodes_for(KEYS[0], 0)
        with pytest.raises(RuntimeError, match="no live shards"):
            HashRing().nodes_for(KEYS[0], 1)


class TestMembership:
    def test_add_is_idempotent(self):
        ring = HashRing(["s0"])
        ring.add("s0")
        assert len(ring) == 1
        assert ring.nodes == ("s0",)

    def test_remove_absent_is_a_noop(self):
        ring = HashRing(["s0"])
        ring.remove("ghost")
        assert ring.nodes == ("s0",)

    def test_contains_and_len(self):
        ring = HashRing(["s0", "s1"])
        assert "s0" in ring and "ghost" not in ring
        assert len(ring) == 2

    def test_rejects_empty_node_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            HashRing([""])

    def test_rejects_bad_replica_count(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)
