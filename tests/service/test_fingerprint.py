"""Tests for dataset fingerprints and request keys."""

from __future__ import annotations

from repro.relation.table import Table
from repro.service.fingerprint import (
    canonical_params,
    fingerprint_table,
    request_key,
)


def _table(**overrides):
    columns = {
        "T": ["a", "b", "a", "b"],
        "Y": [1, 0, 1, 1],
        "Z": ["u", "v", "u", "v"],
    }
    columns.update(overrides)
    return Table.from_columns(columns)


class TestFingerprintTable:
    def test_equal_content_equal_fingerprint(self):
        assert fingerprint_table(_table()) == fingerprint_table(_table())

    def test_constructor_route_does_not_matter(self):
        by_columns = _table()
        by_rows = Table.from_rows(
            ("T", "Y", "Z"),
            [("a", 1, "u"), ("b", 0, "v"), ("a", 1, "u"), ("b", 1, "v")],
        )
        assert fingerprint_table(by_columns) == fingerprint_table(by_rows)

    def test_data_change_changes_fingerprint(self):
        assert fingerprint_table(_table()) != fingerprint_table(
            _table(Y=[1, 0, 1, 0])
        )

    def test_column_name_changes_fingerprint(self):
        renamed = _table().rename({"Z": "W"})
        assert fingerprint_table(_table()) != fingerprint_table(renamed)

    def test_column_order_changes_fingerprint(self):
        reordered = _table().project(["Z", "Y", "T"])
        assert fingerprint_table(_table()) != fingerprint_table(reordered)

    def test_domain_difference_changes_fingerprint(self):
        # Same codes, different decoded values: ["a","b"] vs ["a","c"].
        one = Table.from_columns({"T": ["a", "b"]})
        other = Table.from_columns({"T": ["a", "c"]})
        assert fingerprint_table(one) != fingerprint_table(other)

    def test_selection_changes_fingerprint(self):
        import numpy as np

        table = _table()
        subset = table.select(np.array([True, True, True, False]))
        assert fingerprint_table(table) != fingerprint_table(subset)


class TestRequestKey:
    def test_param_order_is_canonical(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params({"b": 2, "a": 1})

    def test_none_params_match_omitted(self):
        assert canonical_params({"a": 1, "b": None}) == canonical_params({"a": 1})

    def test_key_depends_on_every_component(self):
        base = request_key("fp", "analyze", {"sql": "q"}, 0)
        assert request_key("fp2", "analyze", {"sql": "q"}, 0) != base
        assert request_key("fp", "query", {"sql": "q"}, 0) != base
        assert request_key("fp", "analyze", {"sql": "r"}, 0) != base
        assert request_key("fp", "analyze", {"sql": "q"}, 1) != base
        assert request_key("fp", "analyze", {"sql": "q"}, 0) == base

    def test_key_is_filename_safe(self):
        key = request_key("fp", "analyze", {"sql": "q"}, 0)
        assert len(key) == 64
        assert all(ch in "0123456789abcdef" for ch in key)
