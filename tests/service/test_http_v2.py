"""End-to-end tests for the v2 HTTP surface: jobs API + batch planner."""

from __future__ import annotations

import http.client
import threading
import urllib.parse

import pytest

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import JobFailedError, ServiceClient, ServiceError
from repro.service.core import AnalysisService
from repro.service.http import MAX_BODY_BYTES, make_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"
DISCOVER_SPEC = {
    "kind": "discover",
    "dataset": "staples",
    "treatment": "Income",
    "outcome": "Price",
    "test": "chi2",
}


@pytest.fixture(scope="module")
def columns():
    table = staples_data(n_rows=1000, seed=4)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture
def served(columns):
    service = AnalysisService()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    client.register("staples", columns=columns)
    yield client, service
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


class TestJobsEndpoint:
    def test_submit_poll_result_bitwise_equals_sync(self, served):
        client, _ = served
        accepted = client.submit(DISCOVER_SPEC)
        assert accepted["status"] == "accepted"
        finished = client.wait(accepted["job_id"])
        assert finished["job"]["status"] == "done"
        # The spliced job result is byte-identical to the one-shot
        # endpoint's payload for the same spec (here: a warm cache hit,
        # which by the determinism pins IS the cold bytes).
        sync = client.discover("staples", "Income", outcome="Price", test="chi2")
        assert canonical_json_bytes(finished["result"]) == canonical_json_bytes(
            sync["result"]
        )

    def test_submit_and_wait_convenience(self, served):
        client, _ = served
        finished = client.submit_and_wait(
            {"kind": "query", "dataset": "staples", "sql": SQL}
        )
        assert finished["job"]["kind"] == "query"
        assert finished["result"]["rows"]

    def test_listing_filters_by_dataset(self, served):
        client, _ = served
        client.submit_and_wait({"kind": "query", "dataset": "staples", "sql": SQL})
        listing = client.jobs(dataset="staples")
        assert [job["dataset"] for job in listing["jobs"]] == ["staples"]
        assert client.jobs(dataset="absent")["jobs"] == []

    def test_failed_job_raises_typed_error_from_wait(self, served):
        client, _ = served
        accepted = client.submit(
            {**DISCOVER_SPEC, "treatment": "Missing", "outcome": None}
        )
        with pytest.raises(JobFailedError) as excinfo:
            client.wait(accepted["job_id"])
        assert excinfo.value.status == 500  # missing column = server-side KeyError
        assert excinfo.value.job["status"] == "error"

    def test_unknown_job_is_404(self, served):
        client, _ = served
        with pytest.raises(ServiceError) as excinfo:
            client.job("j-nope")
        assert excinfo.value.status == 404
        assert excinfo.value.payload["status"] == "error"

    def test_submit_unknown_dataset_is_404(self, served):
        client, _ = served
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "query", "dataset": "nope", "sql": SQL})
        assert excinfo.value.status == 404


class TestV2Validation:
    def test_unknown_kind_is_400(self, served):
        client, _ = served
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "explode", "dataset": "staples"})
        assert excinfo.value.status == 400
        assert "unknown kind" in excinfo.value.message

    def test_unknown_spec_field_is_400(self, served):
        client, _ = served
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "query", "dataset": "staples", "sql": SQL, "bogus": 1})
        assert excinfo.value.status == 400
        assert "bogus" in excinfo.value.message

    def test_batch_item_errors_carry_the_index(self, served):
        client, _ = served
        with pytest.raises(ServiceError) as excinfo:
            client.batch_v2(
                [
                    {"kind": "query", "dataset": "staples", "sql": SQL},
                    {"kind": "explode"},
                ]
            )
        assert excinfo.value.status == 400
        assert "batch item 1" in excinfo.value.message

    def test_batch_requests_must_be_a_list(self, served):
        client, _ = served
        with pytest.raises(ServiceError) as excinfo:
            client._post("/v2/batch", {"requests": {"kind": "query"}})
        assert excinfo.value.status == 400

    def test_bad_limit_is_400(self, served):
        client, _ = served
        with pytest.raises(ServiceError) as excinfo:
            client._get("/v2/jobs?limit=many")
        assert excinfo.value.status == 400

    def test_oversized_body_is_rejected(self, served):
        client, _ = served
        parts = urllib.parse.urlsplit(client.base_url)
        connection = http.client.HTTPConnection(parts.hostname, parts.port, timeout=10)
        try:
            connection.request(
                "POST",
                "/v2/jobs",
                body=b"{}",
                headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"exceeds" in response.read()
        finally:
            connection.close()


class TestV2Batch:
    def test_planned_batch_matches_v1_bytes_in_order(self, served):
        client, _ = served
        requests = [
            DISCOVER_SPEC,
            {"kind": "query", "dataset": "staples", "sql": SQL},
            DISCOVER_SPEC,  # duplicate -> deduplicated by the planner
        ]
        planned = client.batch_v2(requests)
        assert planned["plan"]["deduplicated"] == 1
        assert planned["plan"]["datasets"] == 1
        assert [item["kind"] for item in planned["results"]] == [
            "discover",
            "query",
            "discover",
        ]
        v1 = client.batch(requests)
        for planned_item, v1_item in zip(planned["results"], v1["results"]):
            assert canonical_json_bytes(planned_item["result"]) == canonical_json_bytes(
                v1_item["result"]
            )

    def test_stats_surface_v2_counters(self, served):
        client, _ = served
        client.submit_and_wait({"kind": "query", "dataset": "staples", "sql": SQL})
        stats = client.stats()
        assert stats["coalesced"] == 0
        assert stats["job_manager"]["submitted"] == 1
        assert "dataset_plane" in stats


class TestClientRetry:
    def test_connection_failure_raises_typed_error_after_retries(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.2, retries=1, backoff=0.01)
        from repro.service.client import ServiceConnectionError

        with pytest.raises(ServiceConnectionError) as excinfo:
            client.health()
        assert excinfo.value.status == 0

    def test_http_errors_do_not_retry(self, served):
        client, service = served
        requests_before = service.stats()["requests"]
        with pytest.raises(ServiceError):
            client.query("nope", SQL)
        # One 404, no retries: the request counter moved by zero (the
        # lookup fails before counting) and the error carried the payload.
        assert service.stats()["requests"] == requests_before

    def test_json_error_payload_is_attached(self, served):
        client, _ = served
        with pytest.raises(ServiceError) as excinfo:
            client.query("nope", SQL)
        assert excinfo.value.payload == {
            "status": "error",
            "error": excinfo.value.message,
        }
