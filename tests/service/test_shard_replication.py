"""End-to-end tests for dataset replication in the shard tier.

The contract under test (``replicas=K``): register bodies fan out to the
ring owner plus K-1 distinct ring successors, warm reads round-robin
across live replicas, and killing the owning shard leaves every request
kind answering byte-identically to a single-process control **without
recompute** -- the surviving replica serves from its result cache, which
the per-shard ``kernel_counters`` stats pin (zero new counting-kernel
passes after the kill).

The cluster fixture spawns real worker processes (``spawn`` start
method): client -> router HTTP -> shard HTTP -> AnalysisService.
"""

from __future__ import annotations

import json
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"

#: The four request kinds of the acceptance bar, all keyed on "staples".
KINDS = [
    ("/query", {"dataset": "staples", "sql": SQL}),
    (
        "/analyze",
        {"dataset": "staples", "sql": SQL, "treatment": "Income", "test": "chi2"},
    ),
    (
        "/discover",
        {
            "dataset": "staples",
            "treatment": "Income",
            "outcome": "Price",
            "test": "chi2",
        },
    ),
    (
        "/whatif",
        {
            "dataset": "staples",
            "treatment": "Income",
            "outcome": "Price",
            "test": "chi2",
        },
    ),
]


def _columns(seed):
    table = staples_data(n_rows=400, seed=seed)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture(scope="module")
def cluster():
    """Three shard workers at K=2, plus a single-process control."""
    supervisor = ShardSupervisor(shards=3, start_timeout=120.0)
    backends = supervisor.start()
    router = ShardRouter(backends, replicas=2)
    router_server = make_router_server(router)
    threading.Thread(target=router_server.serve_forever, daemon=True).start()

    single = AnalysisService()
    single_server = make_server(single)
    threading.Thread(target=single_server.serve_forever, daemon=True).start()

    sharded = ServiceClient("http://127.0.0.1:%d" % router_server.server_address[1])
    direct = ServiceClient("http://127.0.0.1:%d" % single_server.server_address[1])
    for name, seed in (("staples", 31), ("hot", 32)):
        source = _columns(seed)
        sharded.register(name, columns=source)
        direct.register(name, columns=source)
    yield SimpleNamespace(
        router=router,
        supervisor=supervisor,
        sharded=sharded,
        direct=direct,
    )
    router_server.shutdown()
    router_server.server_close()
    single_server.shutdown()
    single_server.server_close()
    single.close()
    supervisor.close()


def _post(client, path, body):
    return client.request_bytes(path, json.dumps(body).encode())


def _shard_kernel_total(client, shard):
    """The counting-kernel pass total of one live shard, via /stats."""
    stats = client.stats()["shards"][shard]
    return stats["kernel_counters"]["total"]


def _warm_both_replicas(cluster, rounds=4):
    """Issue each kind until every live replica holds every key warm.

    The round-robin cursor advances once per warm read, so two
    consecutive warm reads of one key visit both replicas of a K=2
    placement; a replica's first serve computes cold there (same bytes)
    and is a local cache hit from then on.
    """
    for path, body in KINDS:
        for _ in range(rounds):
            status, _ = _post(cluster.sharded, path, body)
            assert status == 200


class TestPlacement:
    def test_register_fans_out_to_k_distinct_replicas(self, cluster):
        record = cluster.router._registrations["staples"]
        assert len(record.locations) == 2
        assert len(set(record.locations)) == 2
        # Placement is the ring plan: owner first, then its successor.
        plan = cluster.router.ring.nodes_for(record.fingerprint, 2)
        assert tuple(record.locations) == plan

    def test_catalog_reports_replicas_and_client_reads_them(self, cluster):
        record = cluster.router._registrations["staples"]
        entry = cluster.sharded.dataset("staples")
        assert entry["replicas"] == list(record.locations)
        assert cluster.sharded.replicas("staples") == list(record.locations)
        # The single-process catalog has no replicas field...
        assert "replicas" not in cluster.direct.dataset("staples")
        # ...and the client helper degrades to an empty placement.
        assert cluster.direct.replicas("staples") == []

    def test_catalog_matches_control_up_to_the_replicas_field(self, cluster):
        replicated = cluster.sharded.datasets()
        control = cluster.direct.datasets()
        for entry in replicated.values():
            entry.pop("replicas")
        assert canonical_json_bytes(replicated) == canonical_json_bytes(control)

    def test_both_replicas_actually_hold_the_dataset(self, cluster):
        record = cluster.router._registrations["staples"]
        for shard in record.locations:
            url = cluster.supervisor.backend(shard).url
            catalog = ServiceClient(url).datasets()
            assert "staples" in catalog
            assert catalog["staples"]["fingerprint"] == record.fingerprint


class TestReadBalancing:
    def test_warm_reads_round_robin_across_replicas(self, cluster):
        record = cluster.router._registrations["hot"]
        body = {"dataset": "hot", "sql": SQL}
        status, cold = _post(cluster.sharded, "/query", body)
        assert status == 200
        assert json.loads(cold)["cached"] is False
        requests_before = {
            shard: cluster.sharded.stats()["shards"][shard]["requests"]
            for shard in record.locations
        }
        control = cluster.direct.query("hot", SQL)
        repeats = 8
        for _ in range(repeats):
            status, payload = _post(cluster.sharded, "/query", body)
            assert status == 200
            assert canonical_json_bytes(
                json.loads(payload)["result"]
            ) == canonical_json_bytes(control["result"])
        served = {
            shard: cluster.sharded.stats()["shards"][shard]["requests"]
            - requests_before[shard]
            for shard in record.locations
        }
        # Round-robin: both replicas served their half of the hot reads.
        for shard, count in served.items():
            assert count >= repeats // 2 - 1, served
        assert cluster.sharded.stats()["router"]["replica_reads"] >= repeats

    def test_stats_expose_the_replication_counters(self, cluster):
        router_stats = cluster.sharded.stats()["router"]
        assert router_stats["replicas"] == 2
        assert router_stats["replica_reads"] > 0
        assert router_stats["rereplications"] >= 0


class TestOwnerDeathFailover:
    def test_kill_owner_answers_warm_without_recompute(self, cluster):
        router, supervisor = cluster.router, cluster.supervisor
        _warm_both_replicas(cluster)
        controls = {
            path: _post(cluster.direct, path, body)[1] for path, body in KINDS
        }
        record = router._registrations["staples"]
        primary, survivor = record.locations[0], record.locations[1]
        third = next(
            backend.name
            for backend in supervisor.backends
            if backend.name not in record.locations
        )
        # Hold background re-replication back (via the router's own
        # never-retry set) so the post-kill reads below deterministically
        # hit the surviving replica rather than racing a freshly restored
        # cold copy; the next test releases it and watches the restore.
        with router._lock:
            router._restore_failed.add((record.fingerprint, third))

        # A job owned by the doomed shard: after the kill the router must
        # re-home it onto the surviving replica -- warm, zero recompute.
        accepted = None
        for _ in range(10):
            candidate = cluster.sharded.submit(
                {"kind": "query", "dataset": "staples", "sql": SQL}
            )
            cluster.sharded.wait(candidate["job_id"], timeout=120)
            if candidate["job_id"].startswith(f"{primary}."):
                accepted = candidate
                break
        assert accepted is not None, "no job landed on the primary"

        kernels_before = _shard_kernel_total(cluster.sharded, survivor)
        supervisor.kill(primary)
        router.mark_dead(router._backends[primary])

        # Every kind answers warm from the survivor, byte-identical to
        # the single-process control (status/kind/cached/result; only
        # elapsed_seconds may differ).
        for path, body in KINDS:
            status, payload = _post(cluster.sharded, path, body)
            assert status == 200, path
            parsed = json.loads(payload)
            control = json.loads(controls[path])
            assert parsed["cached"] is True, path
            assert parsed["kind"] == control["kind"]
            assert canonical_json_bytes(parsed["result"]) == canonical_json_bytes(
                control["result"]
            ), path

        # Zero recompute: the survivor ran no new counting-kernel passes.
        assert _shard_kernel_total(cluster.sharded, survivor) == kernels_before
        # And no cold re-registration window: the placement kept a live
        # replica throughout (the survivor stayed in the record).
        assert survivor in record.locations

        # The dead shard's jobs survive: the router lazily re-submits the
        # recorded spec to the survivor on the next read.  The key is
        # warm there, so even the resurrection recomputes nothing.
        finished = cluster.sharded.wait(accepted["job_id"], timeout=120)
        assert finished["job"]["id"] == accepted["job_id"]
        control = json.loads(controls["/query"])
        assert canonical_json_bytes(finished["result"]) == canonical_json_bytes(
            control["result"]
        )
        assert _shard_kernel_total(cluster.sharded, survivor) == kernels_before
        assert cluster.sharded.stats()["router"]["job_failovers"] >= 1

    def test_background_rereplication_restores_the_k_target(self, cluster):
        """After the owner kill above, the router re-replicates onto the
        remaining live shard until the dataset is back at K=2."""
        router = cluster.router
        record = router._registrations["staples"]
        # Release the hold the previous test placed and restart the
        # restore worker (mark_dead already fired; a real deployment
        # would not need this nudge).
        third = next(
            backend.name
            for backend in cluster.supervisor.backends
            if not backend.dead and backend.name not in record.locations
        )
        with router._lock:
            router._restore_failed.discard((record.fingerprint, third))
            router._start_restore_locked()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            with router._lock:
                placement = list(record.locations)
            if len(placement) == 2:
                break
            time.sleep(0.1)
        assert len(placement) == 2, placement
        assert all(not router._backends[shard].dead for shard in placement)
        assert router._rereplications >= 1
        # The restored replica really holds the dataset.
        restored = placement[1]
        url = cluster.supervisor.backend(restored).url
        assert "staples" in ServiceClient(url).datasets()
        # And reads still match the control byte-for-byte.
        status, payload = _post(cluster.sharded, "/query", dict(KINDS[0][1]))
        control = cluster.direct.query("staples", SQL)
        assert status == 200
        assert canonical_json_bytes(
            json.loads(payload)["result"]
        ) == canonical_json_bytes(control["result"])
