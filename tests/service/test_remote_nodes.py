"""End-to-end tests for remote shard nodes (the TCP cluster tier).

The contract under test extends the shard-router one across a process
boundary the router did not create: worker processes started on their
own (``hypdb shard --join``) enter the ring through the authenticated
``/v2/cluster/join`` handshake, stay members via heartbeats, gossip
their warm cache keys to the router, and the whole remote topology
answers **byte-identically** to a single-process service -- cold, warm,
through node death, and through a router restart that recovers its
membership, registrations, and public job-id table from the
:class:`~repro.service.journal.RouterJournal`.

The module-scoped fixture spawns real node processes (``spawn`` start
method) so the full wire path is exercised; the restart/gossip tests use
in-process :class:`ShardNode` instances so a router can be torn down and
rebuilt around live nodes cheaply.
"""

from __future__ import annotations

import json
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service.client import ClusterJoinError, ServiceClient, ServiceError
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.journal import RouterJournal
from repro.service.shard import (
    PROTOCOL_VERSION,
    ShardNode,
    ShardRouter,
    make_router_server,
    spawn_node,
)

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"
TOKEN = "test-cluster-token"


def _columns(seed):
    table = staples_data(n_rows=400, seed=seed)
    return {name: table.column(name) for name in table.columns}


def _wait_until(predicate, timeout=30.0, interval=0.05):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not met within %.1fs" % timeout)


@pytest.fixture(scope="module")
def remote():
    """A cluster router plus two *spawned* remote nodes, and a control."""
    router = ShardRouter(
        [], cluster_token=TOKEN, heartbeat_interval=0.25, liveness_timeout=2.5
    )
    router_server = make_router_server(router)
    threading.Thread(target=router_server.serve_forever, daemon=True).start()
    router_url = "http://127.0.0.1:%d" % router_server.server_address[1]

    processes = []
    for name in ("alpha", "beta"):
        process, _ = spawn_node(router_url, TOKEN, name=name)
        processes.append(process)

    single = AnalysisService()
    single_server = make_server(single)
    threading.Thread(target=single_server.serve_forever, daemon=True).start()

    sharded = ServiceClient(router_url)
    direct = ServiceClient("http://127.0.0.1:%d" % single_server.server_address[1])
    for name, seed in (("staples", 11), ("staples2", 12)):
        source = _columns(seed)
        sharded.register(name, columns=source)
        direct.register(name, columns=source)
    yield SimpleNamespace(
        router=router,
        router_url=router_url,
        sharded=sharded,
        direct=direct,
        processes=processes,
    )
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=10)
    router_server.shutdown()
    router_server.server_close()
    router.close()
    single_server.shutdown()
    single_server.server_close()
    single.close()


def both(remote, path, body):
    """POST the same body through the cluster and the single process."""
    raw = json.dumps(body).encode()
    return (
        remote.sharded.request_bytes(path, raw),
        remote.direct.request_bytes(path, raw),
    )


def assert_same_envelope(sharded, direct):
    """Envelopes match up to timing: kind, cached flag, and result bytes."""
    status_a, body_a = sharded
    status_b, body_b = direct
    assert status_a == status_b
    parsed_a, parsed_b = json.loads(body_a), json.loads(body_b)
    assert parsed_a["kind"] == parsed_b["kind"]
    assert parsed_a["cached"] == parsed_b["cached"]
    assert canonical_json_bytes(parsed_a["result"]) == canonical_json_bytes(
        parsed_b["result"]
    )


class TestByteIdentity:
    def test_join_handshake_admitted_both_nodes(self, remote):
        listing = json.loads(remote.sharded.request_bytes("/v2/cluster")[1])
        assert sorted(listing["nodes"]) == ["alpha", "beta"]
        for node in listing["nodes"].values():
            assert node["remote"] is True and node["live"] is True

    def test_register_responses_are_byte_identical(self, remote):
        source = _columns(21)
        (status_a, body_a), (status_b, body_b) = both(
            remote, "/register", {"name": "extra", "columns": source}
        )
        assert (status_a, body_a) == (status_b, body_b) == (200, body_b)

    @pytest.mark.parametrize(
        "path,body",
        [
            ("/query", {"dataset": "staples", "sql": SQL}),
            (
                "/analyze",
                {
                    "dataset": "staples",
                    "sql": SQL,
                    "treatment": "Income",
                    "test": "chi2",
                },
            ),
            (
                "/discover",
                {
                    "dataset": "staples2",
                    "treatment": "Income",
                    "outcome": "Price",
                    "test": "chi2",
                },
            ),
            (
                "/whatif",
                {
                    "dataset": "staples2",
                    "treatment": "Income",
                    "outcome": "Price",
                    "test": "chi2",
                },
            ),
        ],
    )
    def test_every_kind_matches_cold_then_warm(self, remote, path, body):
        cold = both(remote, path, body)
        assert_same_envelope(*cold)
        assert json.loads(cold[0][1])["cached"] is False
        warm = both(remote, path, body)
        assert_same_envelope(*warm)
        assert json.loads(warm[0][1])["cached"] is True

    def test_malformed_spec_errors_are_byte_identical(self, remote):
        # A 400 from spec parsing carries no registry state, so its body
        # is byte-identical on any topology.
        (status_a, body_a), (status_b, body_b) = both(
            remote, "/query", {"dataset": "staples"}  # missing sql
        )
        assert status_a == status_b == 400
        assert body_a == body_b

    def test_unknown_dataset_is_the_same_typed_404(self, remote):
        # The 404 message lists the answering shard's registered names,
        # which depends on placement; the status and the stable prefix
        # must match the single process.
        for path in ("/query", "/v2/jobs"):
            (status_a, body_a), (status_b, body_b) = both(
                remote, path, {"kind": "query", "dataset": "ghost", "sql": SQL}
            )
            assert status_a == status_b == 404, path
            for payload in (json.loads(body_a), json.loads(body_b)):
                assert payload["status"] == "error"
                assert "unknown dataset 'ghost'" in payload["error"]

    def test_job_results_match_single_process_bytes(self, remote):
        spec = {
            "kind": "query",
            "dataset": "staples2",
            "sql": "SELECT Region, Income, avg(Price) FROM t GROUP BY Region, Income",
        }
        accepted = remote.sharded.submit(spec)
        shard, _, local = accepted["job_id"].partition(".")
        assert shard in ("alpha", "beta") and local.startswith("j")
        finished = remote.sharded.wait(accepted["job_id"], timeout=120)
        sync = remote.direct.submit_and_wait(spec)
        assert canonical_json_bytes(finished["result"]) == canonical_json_bytes(
            sync["result"]
        )

    def test_heartbeats_gossip_warm_keys_to_the_router(self, remote):
        remote.sharded.query("staples", SQL)  # warm at least one node key
        router = remote.router
        _wait_until(lambda: len(router._gossip) > 0, timeout=15)
        stats = remote.sharded.stats()["router"]["cluster"]
        assert stats["enabled"] is True
        assert stats["remote_nodes"] == 2
        assert stats["heartbeats"] > 0


class TestJoinProtocol:
    def test_bad_token_is_typed_403_and_never_retried(self, remote):
        rejects_before = remote.router._join_rejects
        client = ServiceClient(remote.router_url, retries=3)
        with pytest.raises(ClusterJoinError) as excinfo:
            client.join_cluster(node="evil", url="http://127.0.0.1:9", token="wrong")
        assert excinfo.value.status == 403
        assert excinfo.value.code == "bad_token"
        # Auth rejections must not consume the retry budget: exactly one
        # request reached the router.
        assert remote.router._join_rejects == rejects_before + 1

    def test_protocol_mismatch_is_typed_409(self, remote):
        client = ServiceClient(remote.router_url, retries=0)
        with pytest.raises(ClusterJoinError) as excinfo:
            client.join_cluster(
                node="futuristic",
                url="http://127.0.0.1:9",
                token=TOKEN,
                protocol=PROTOCOL_VERSION + 1,
            )
        assert excinfo.value.status == 409
        assert excinfo.value.code == "protocol_mismatch"
        assert excinfo.value.payload["expected"] == PROTOCOL_VERSION

    def test_name_conflict_with_live_member_is_typed_409(self, remote):
        client = ServiceClient(remote.router_url, retries=0)
        with pytest.raises(ClusterJoinError) as excinfo:
            client.join_cluster(node="alpha", url="http://127.0.0.1:9", token=TOKEN)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "name_conflict"

    def test_unknown_member_heartbeat_is_typed_409(self, remote):
        client = ServiceClient(remote.router_url, retries=0)
        with pytest.raises(ClusterJoinError) as excinfo:
            client.cluster_heartbeat(node="ghost", token=TOKEN)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "unknown_member"

    def test_malformed_join_body_is_plain_400(self, remote):
        status, body = remote.sharded.request_bytes(
            "/v2/cluster/join", json.dumps({"node": "x!", "url": "nope"}).encode()
        )
        assert status == 400
        assert "code" not in json.loads(body)

    def test_clustering_disabled_router_rejects_joins(self):
        from repro.service.shard import ShardBackend

        router = ShardRouter([ShardBackend(name="s0", url="http://127.0.0.1:9")])
        status, body = router.handle_cluster_join(
            json.dumps(
                {
                    "node": "n",
                    "url": "http://127.0.0.1:9",
                    "token": "t",
                    "protocol": PROTOCOL_VERSION,
                }
            ).encode()
        )
        assert status == 403
        assert json.loads(body)["code"] == "clustering_disabled"


@pytest.fixture()
def journaled_cluster(tmp_path):
    """A journaled router over two in-process nodes (cheap to rebuild)."""
    journal_dir = tmp_path / "router-journal"
    router = ShardRouter(
        [],
        cluster_token=TOKEN,
        heartbeat_interval=0.2,
        liveness_timeout=30.0,
        journal=RouterJournal(journal_dir),
    )
    server = make_router_server(router)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://127.0.0.1:%d" % port

    nodes = []
    for name in ("n1", "n2"):
        node = ShardNode(url, TOKEN, name=name, heartbeat_interval=0.2)
        node.start()
        threading.Thread(target=node.serve_forever, daemon=True).start()
        node.join()
        nodes.append(node)

    client = ServiceClient(url)
    client.register("staples", columns=_columns(31))
    state = SimpleNamespace(
        journal_dir=journal_dir,
        router=router,
        server=server,
        port=port,
        url=url,
        client=client,
        nodes=nodes,
        restarted=[],
    )
    yield state
    for node in nodes:
        node.close()
    for extra in state.restarted:
        extra.close()
    state.server.shutdown()
    state.server.server_close()
    state.router.close()


class TestRouterRestart:
    def test_restart_resolves_every_public_job_id_byte_identically(
        self, journaled_cluster
    ):
        cluster = journaled_cluster
        specs = [
            {
                "kind": "query",
                "dataset": "staples",
                "sql": f"SELECT {column}, avg(Price) FROM t GROUP BY {column}",
            }
            for column in ("Income", "Region", "Distance")
        ]
        job_ids = [cluster.client.submit(spec)["job_id"] for spec in specs]
        before = {}
        for job_id in job_ids:
            cluster.client.wait(job_id, timeout=120)
            before[job_id] = cluster.router.handle_job_get(job_id, "")
            assert before[job_id][0] == 200

        # A brand-new router process: no in-memory state, only the journal.
        recovered = ShardRouter(
            [],
            cluster_token=TOKEN,
            liveness_timeout=60.0,
            journal=RouterJournal(cluster.journal_dir),
        )
        cluster.restarted.append(recovered)
        assert sorted(recovered._backends) == ["n1", "n2"]
        for job_id in job_ids:
            status, body = recovered.handle_job_get(job_id, "")
            assert status == 200, body
            assert (status, body) == before[job_id]

    def test_gossip_converges_to_warm_routing_after_restart(self, journaled_cluster):
        cluster = journaled_cluster
        groupings = [
            "Income",
            "Region",
            "Distance",
            "Income, Region",
            "Distance, Income",
        ]
        bodies = [
            {"dataset": "staples", "sql": f"SELECT {g}, avg(Price) FROM t GROUP BY {g}"}
            for g in groupings
        ]
        for body in bodies:
            assert cluster.client.query(**body)["cached"] is False
        warmed = len(cluster.router.warm_keys)
        assert warmed >= len(bodies)

        # Restart the router on the same port: fresh process state, same
        # journal.  The epoch changes, so the nodes' heartbeats re-send
        # their full warm-key digests -- no traffic replay needed.
        cluster.server.shutdown()
        cluster.server.server_close()
        cluster.router.close()
        recovered = ShardRouter(
            [],
            cluster_token=TOKEN,
            heartbeat_interval=0.2,
            liveness_timeout=30.0,
            journal=RouterJournal(cluster.journal_dir),
        )
        cluster.restarted.append(recovered)
        server = make_router_server(recovered, port=cluster.port)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            _wait_until(
                lambda: len(recovered.warm_keys) >= 0.9 * warmed, timeout=30
            )
            hits_before = recovered._warm_hits
            for body in bodies:
                assert cluster.client.query(**body)["cached"] is True
            # The acceptance bar: >= 90% of the repeats route warm on the
            # restarted router without it having seen the original traffic.
            assert recovered._warm_hits - hits_before >= 0.9 * len(bodies)
        finally:
            server.shutdown()
            server.server_close()

    def test_leave_then_rejoin_under_same_name(self, journaled_cluster):
        cluster = journaled_cluster
        node = cluster.nodes[0]
        # Pause heartbeats first: a beating node would hear
        # ``unknown_member`` after the leave and transparently re-join.
        node._stop.set()
        if node._beat_thread is not None:
            node._beat_thread.join(timeout=10)
        node.leave()
        # Leave is synchronous: membership gone, backend retired.
        assert cluster.router._backends[node.name].dead is True
        response = cluster.client.request_bytes("/v2/cluster")[1]
        assert json.loads(response)["nodes"][node.name]["live"] is False
        node._stop.clear()
        node.join()  # same name is free again after leave
        assert cluster.router._backends[node.name].dead is False


# Destructive: kills one of the module-scoped fixture's node processes,
# so this class must run after every test that wants both nodes alive
# (pytest executes classes in file order).
class TestNodeDeath:
    def test_heartbeat_timeout_fails_over_byte_identically(self, remote):
        victim = remote.processes[0]
        victim.terminate()
        victim.join(timeout=10)
        router = remote.router
        _wait_until(
            lambda: any(backend.dead for backend in router._backends.values()),
            timeout=15,
        )
        # Every dataset keeps answering, byte-identical to the control.
        for dataset in ("staples", "staples2"):
            sharded, direct = both(
                remote, "/query", {"dataset": dataset, "sql": SQL}
            )
            assert sharded[0] == direct[0] == 200
            parsed_a, parsed_b = json.loads(sharded[1]), json.loads(direct[1])
            assert canonical_json_bytes(parsed_a["result"]) == canonical_json_bytes(
                parsed_b["result"]
            )
        listing = json.loads(remote.sharded.request_bytes("/v2/cluster")[1])
        assert sorted(listing["nodes"]) == ["alpha", "beta"]
        assert [n for n in listing["nodes"].values() if n["live"]] != []
        assert [n for n in listing["nodes"].values() if not n["live"]] != []
