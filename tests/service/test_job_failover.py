"""Router-level job failover, driven by the deterministic fault harness.

The acceptance bar: a submitted *cold* job survives the owning shard's
death -- the router re-submits the journaled spec body to a live shard
and ``wait()`` returns bytes identical to a single-process control.
The fault plan (``REPRO_FAULTS``, inherited by the spawned workers)
pins the job mid-compute on the doomed shard with a ``slow`` rule, so
the kill happens at a deterministic point with no sleeps standing in
for synchronization; ring owners are precomputed from the dataset
fingerprint, so "the doomed shard" is chosen, not discovered.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.report import canonical_json_bytes
from repro.datasets import staples_data
from repro.service import faults
from repro.service.client import ServiceClient, ServiceError
from repro.service.core import AnalysisService, build_table
from repro.service.fingerprint import fingerprint_table
from repro.service.shard import ShardRouter, ShardSupervisor, make_router_server
from repro.service.shard.ring import HashRing
from repro.service.shard.supervisor import ShardBackend

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"


def _columns(seed):
    table = staples_data(n_rows=250, seed=seed)
    return {name: table.column(name) for name in table.columns}


def _owner(source, shards=2):
    """The ring owner the cluster will pick, computed before it exists."""
    fingerprint = fingerprint_table(build_table(columns=source))
    return HashRing([f"s{index}" for index in range(shards)]).node_for(fingerprint)


def _start_cluster(rules, shards=2):
    """Spawn a faulted cluster; the plan reaches workers via the env.

    The env var is set only across ``start()`` (spawned children copy
    the parent environment) and popped right after, so the *test*
    process never arms the plan -- control computations stay clean.
    """
    os.environ[faults.ENV_VAR] = json.dumps(rules)
    try:
        supervisor = ShardSupervisor(shards=shards, start_timeout=120.0)
        backends = supervisor.start()
    finally:
        os.environ.pop(faults.ENV_VAR, None)
        faults.clear()
    router = ShardRouter(backends)
    server = make_router_server(router)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
    return supervisor, router, server, client


def _stop_cluster(supervisor, server):
    server.shutdown()
    server.server_close()
    supervisor.close()


class TestKillMidJob:
    def test_cold_job_survives_owning_shard_death_byte_identically(self):
        """Submit -> pinned mid-compute on the owner -> kill -> wait()
        completes on the survivor with the control's exact bytes."""
        source = _columns(61)
        owner = _owner(source)
        spec = {"kind": "query", "dataset": "doomed", "sql": SQL}
        rules = [
            {
                "site": "service.compute",
                "action": "slow",
                "seconds": 30,
                "scope": owner,
                "match": {"dataset": "doomed"},
            }
        ]
        supervisor, router, server, client = _start_cluster(rules)
        control = AnalysisService()
        try:
            client.register("doomed", columns=source)
            assert router._registrations["doomed"].location == owner
            control.register("doomed", columns=source)
            expected = control.query("doomed", SQL).payload  # canonical bytes

            accepted = client.submit(spec)
            job_id = accepted["job_id"]
            assert job_id.startswith(f"{owner}.")
            # The slow rule pins the job in the running state on the
            # owner -- the kill below is deterministically mid-compute.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.job(job_id)["job"]["status"] == "running":
                    break
                time.sleep(0.02)
            assert client.job(job_id)["job"]["status"] == "running"

            supervisor.kill(owner)
            router.mark_dead(router._backends[owner])

            finished = client.wait(job_id, timeout=120)
            assert finished["job"]["id"] == job_id  # public id is stable
            assert finished["job"]["status"] == "done"
            assert canonical_json_bytes(finished["result"]) == expected
            # Reads stay stable after the failover settled.
            again = client.job(job_id)
            assert again["job"]["id"] == job_id
            assert canonical_json_bytes(again["result"]) == expected
            assert again["job"]["status"] == "done"
            stats = client.stats()["router"]
            assert stats["job_failovers"] >= 1
            assert owner not in stats["live_shards"]
            # The merged listing reports the job under its public id.
            listing = client.jobs()["jobs"]
            assert job_id in [snapshot["id"] for snapshot in listing]
        finally:
            control.close()
            _stop_cluster(supervisor, server)


class TestKillMidRequest:
    def test_sync_request_fails_over_when_the_shard_dies_mid_compute(self):
        """A ``kill`` rule crashes the owner inside the synchronous read
        path; the router retires it and the retry answers identically."""
        source = _columns(62)
        owner = _owner(source)
        rules = [
            {
                "site": "service.compute",
                "action": "kill",
                "scope": owner,
                "match": {"dataset": "doomed"},
            }
        ]
        supervisor, router, server, client = _start_cluster(rules)
        control = AnalysisService()
        try:
            client.register("doomed", columns=source)
            assert router._registrations["doomed"].location == owner
            control.register("doomed", columns=source)
            expected = control.query("doomed", SQL).payload  # canonical bytes
            response = client.query("doomed", SQL)  # crashes s<owner> inside
            assert canonical_json_bytes(response["result"]) == expected
            assert router._backends[owner].dead
            assert client.stats()["router"]["failovers"] >= 1
        finally:
            control.close()
            _stop_cluster(supervisor, server)


class TestRetryAfter:
    def _dead_router(self):
        backend = ShardBackend(name="s0", url="http://127.0.0.1:9")
        router = ShardRouter([backend])
        router.mark_dead(backend)
        server = make_router_server(router)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        return server, "http://127.0.0.1:%d" % server.server_address[1]

    def test_503_carries_retry_after_header(self):
        server, url = self._dead_router()
        try:
            request = urllib.request.Request(
                url + "/query",
                data=json.dumps({"dataset": "d", "sql": SQL}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "1"
            assert json.loads(excinfo.value.read())["error"] == "no live shards"
        finally:
            server.shutdown()
            server.server_close()

    def test_client_honors_retry_after_bounded(self, monkeypatch):
        server, url = self._dead_router()
        pauses = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda seconds: pauses.append(seconds)
        )
        try:
            client = ServiceClient(url, retries=2, backoff=0.0)
            with pytest.raises(ServiceError) as excinfo:
                client.query("d", SQL)
            assert excinfo.value.status == 503
            # One bounded pause per retry, at the advertised second --
            # not the exponential backoff (the server asked for this).
            assert pauses == [1.0, 1.0]
            assert all(p <= ServiceClient.RETRY_AFTER_CAP for p in pauses)
        finally:
            server.shutdown()
            server.server_close()
