"""Tests for the async job manager (``repro.service.jobs``)."""

from __future__ import annotations

import threading

import pytest

from repro.datasets import staples_data
from repro.engine import ParallelEngine
from repro.service.core import AnalysisService
from repro.service.jobs import DONE, ERROR, UnknownJobError
from repro.service.registry import UnknownDatasetError
from repro.service.spec import DiscoverSpec, QuerySpec

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"
DISCOVER = dict(dataset="staples", treatment="Income", outcome="Price", test="chi2")


@pytest.fixture(scope="module")
def columns():
    table = staples_data(n_rows=1000, seed=4)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture
def service(columns):
    service = AnalysisService()
    service.register("staples", columns=columns)
    yield service
    service.close()


class TestLifecycle:
    def test_submit_poll_result_matches_sync_bytes(self, service, columns):
        job = service.job_manager.submit(DiscoverSpec(**DISCOVER))
        finished = service.job_manager.wait(job.id)
        assert finished.status == DONE
        # The async result is bitwise equal to the synchronous path on a
        # fresh service (cold in both cases).
        sync = AnalysisService()
        sync.register("staples", columns=columns)
        assert finished.result.payload == sync.execute(DiscoverSpec(**DISCOVER)).payload

    def test_parallel_engine_jobs_match_serial_bytes(self, columns):
        serial = AnalysisService()
        serial.register("staples", columns=columns)
        reference = serial.execute(DiscoverSpec(**DISCOVER)).payload
        with ParallelEngine(jobs=4) as engine:
            service = AnalysisService(engine=engine)
            service.register("staples", columns=columns)
            try:
                job = service.job_manager.wait(
                    service.job_manager.submit(DiscoverSpec(**DISCOVER)).id
                )
            finally:
                service.close()
        assert job.result.payload == reference

    def test_snapshot_shape(self, service):
        job = service.job_manager.submit(QuerySpec(dataset="staples", sql=SQL))
        finished = service.job_manager.wait(job.id)
        snapshot = finished.snapshot()
        assert snapshot["id"] == job.id
        assert snapshot["kind"] == "query"
        assert snapshot["dataset"] == "staples"
        assert snapshot["status"] == DONE
        assert snapshot["spec"]["sql"] == SQL
        assert snapshot["coalesced_into"] is None

    def test_unknown_dataset_rejected_at_submit(self, service):
        with pytest.raises(UnknownDatasetError):
            service.job_manager.submit(QuerySpec(dataset="nope", sql=SQL))

    def test_unknown_job_id(self, service):
        with pytest.raises(UnknownJobError):
            service.job_manager.get("j-nope")

    def test_failed_job_records_error_and_status(self, service):
        # A missing column is a KeyError deep in the library: the sync
        # HTTP path maps that to 500, and so does the job record.
        job = service.job_manager.submit(
            DiscoverSpec(dataset="staples", treatment="Missing", test="chi2")
        )
        finished = service.job_manager.wait(job.id)
        assert finished.status == ERROR
        assert finished.snapshot()["error_status"] == 500
        assert finished.error

    def test_failed_job_maps_value_errors_to_400(self, service):
        from repro.service.spec import AnalyzeSpec

        # top_k=0 passes spec validation but fails in the explanation
        # stage with ValueError -- a client mistake, reported as 400.
        job = service.job_manager.submit(
            AnalyzeSpec(
                dataset="staples",
                sql=SQL,
                covariates=("Distance",),
                mediators=(),
                top_k=0,
                test="chi2",
            )
        )
        finished = service.job_manager.wait(job.id)
        assert finished.status == ERROR
        assert finished.snapshot()["error_status"] == 400
        assert "top_k" in finished.error


class TestWorkSharing:
    def test_identical_active_specs_coalesce(self, service):
        release = threading.Event()
        started = threading.Event()
        original = service._compute

        def blocking_compute(spec, entry):
            started.set()
            release.wait(timeout=10)
            return original(spec, entry)

        service._compute = blocking_compute
        try:
            first = service.job_manager.submit(DiscoverSpec(**DISCOVER))
            assert started.wait(timeout=10)  # the primary is running
            second = service.job_manager.submit(DiscoverSpec(**DISCOVER))
            assert second.primary is first
            assert second.snapshot()["coalesced_into"] == first.id
        finally:
            release.set()
        for job in (first, second):
            finished = service.job_manager.wait(job.id)
            assert finished.snapshot()["status"] == DONE
        assert second.result is None  # follower holds no copy of its own
        assert second.service_result().payload == first.result.payload
        assert service.job_manager.stats()["coalesced"] == 1

    def test_cached_result_completes_without_worker(self, service):
        spec = QuerySpec(dataset="staples", sql=SQL)
        service.execute(spec)  # populate the cache
        job = service.job_manager.submit(spec)
        assert job.status == DONE  # synchronous warm path
        assert job.future is None
        assert job.result.cached


class TestListing:
    def test_list_filters_by_dataset(self, service, columns):
        service.register("alias", columns=columns)  # same content, new name
        service.job_manager.wait(
            service.job_manager.submit(QuerySpec(dataset="staples", sql=SQL)).id
        )
        service.job_manager.wait(
            service.job_manager.submit(QuerySpec(dataset="alias", sql=SQL)).id
        )
        everything = service.job_manager.list()
        assert [job["dataset"] for job in everything] == ["staples", "alias"]
        assert [job["dataset"] for job in service.job_manager.list(dataset="alias")] == [
            "alias"
        ]

    def test_finished_jobs_are_pruned(self, columns):
        service = AnalysisService(max_jobs=2)
        service.register("staples", columns=columns)
        try:
            ids = []
            for seed in range(4):
                spec = DiscoverSpec(**{**DISCOVER, "seed": seed})
                ids.append(service.job_manager.submit(spec).id)
                service.job_manager.wait(ids[-1])
            retained = {job["id"] for job in service.job_manager.list()}
            assert len(retained) <= 3  # 2 retained finished + the newest
            assert ids[0] not in retained
        finally:
            service.close()

    def test_stats_shape(self, service):
        service.job_manager.wait(
            service.job_manager.submit(QuerySpec(dataset="staples", sql=SQL)).id
        )
        stats = service.job_manager.stats()
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert stats["failed"] == 0
        assert service.stats()["job_manager"]["submitted"] == 1


class TestLifecycleEdges:
    def test_limit_zero_returns_nothing_and_negative_rejected(self, service):
        service.job_manager.wait(
            service.job_manager.submit(QuerySpec(dataset="staples", sql=SQL)).id
        )
        assert service.job_manager.list(limit=0) == []
        with pytest.raises(ValueError, match="limit"):
            service.job_manager.list(limit=-1)

    def test_closed_service_does_not_resurrect_a_manager(self, columns):
        closed = AnalysisService()
        closed.register("staples", columns=columns)
        closed.close()
        with pytest.raises(RuntimeError, match="closed"):
            closed.job_manager
