"""Tests for the v2 batch planner (``repro.service.planner``)."""

from __future__ import annotations

import pytest

from repro.datasets import staples_data
from repro.engine import ParallelEngine
from repro.engine.dataplane import PLANE_STATS
from repro.service.core import AnalysisService
from repro.service.planner import execute_plan, plan_batch, run_batch
from repro.service.registry import UnknownDatasetError
from repro.service.spec import DiscoverSpec, QuerySpec

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"
SQL_B = "SELECT Region, avg(Price) FROM t GROUP BY Region"


def _columns(seed: int, n_rows: int = 800):
    table = staples_data(n_rows=n_rows, seed=seed)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture
def service():
    service = AnalysisService()
    service.register("staples", columns=_columns(4))
    service.register("other", columns=_columns(9))
    return service


def _discover(dataset: str, seed: int) -> DiscoverSpec:
    return DiscoverSpec(
        dataset=dataset, treatment="Income", outcome="Price", test="chi2", seed=seed
    )


class TestPlanning:
    def test_groups_by_fingerprint_warm_first_dedup(self, service):
        service.execute(QuerySpec(dataset="staples", sql=SQL))  # warm one spec
        specs = [
            _discover("staples", 0),
            _discover("other", 0),
            QuerySpec(dataset="staples", sql=SQL),  # warm
            _discover("staples", 0),  # duplicate of item 0
            QuerySpec(dataset="other", sql=SQL_B),
        ]
        plan = plan_batch(service, specs)
        assert plan.describe() == {
            "specs": 5,
            "datasets": 2,
            "warm": 1,
            "cold": 3,
            "deduplicated": 1,
        }
        staples, other = plan.groups
        # Interleaved submissions regroup by dataset, cache hits first.
        assert [item.index for item in staples.items] == [2, 0]
        assert [item.index for item in other.items] == [1, 4]
        assert plan.duplicates[0].index == 3
        assert plan.duplicates[0].leader.index == 0

    def test_aliases_share_one_group(self, service):
        service.register("alias", columns=_columns(4))  # same content as staples
        plan = plan_batch(
            service,
            [
                QuerySpec(dataset="staples", sql=SQL),
                QuerySpec(dataset="alias", sql=SQL_B),
            ],
        )
        assert len(plan.groups) == 1  # one fingerprint, one pin

    def test_unknown_dataset_rejects_the_whole_batch(self, service):
        with pytest.raises(UnknownDatasetError):
            plan_batch(service, [QuerySpec(dataset="nope", sql=SQL)])


class TestExecution:
    def test_results_in_submission_order_and_bitwise_equal_to_one_shot(self, service):
        specs = [
            _discover("staples", 0),
            QuerySpec(dataset="other", sql=SQL_B),
            _discover("staples", 0),  # duplicate
            QuerySpec(dataset="staples", sql=SQL),
        ]
        results, summary = run_batch(service, specs)
        assert summary["deduplicated"] == 1
        assert [result.kind for result in results] == [
            "discover",
            "query",
            "discover",
            "query",
        ]
        # Bitwise equality with the one-shot synchronous path, spec by spec.
        oneshot = AnalysisService()
        oneshot.register("staples", columns=_columns(4))
        oneshot.register("other", columns=_columns(9))
        for spec, result in zip(specs, results):
            assert result.payload == oneshot.execute(spec).payload
        # The duplicate shares its leader's bytes and is flagged.
        assert results[2].coalesced and results[2].cached
        assert results[2].payload == results[0].payload

    def test_duplicates_compute_once(self, service):
        from repro.relation.table import KERNEL_COUNTERS

        specs = [_discover("staples", 3)] * 6
        KERNEL_COUNTERS.reset()
        results, summary = run_batch(service, specs)
        passes_batch = KERNEL_COUNTERS.total()
        assert summary["deduplicated"] == 5
        assert len({result.payload for result in results}) == 1

        solo = AnalysisService()
        solo.register("staples", columns=_columns(4))
        KERNEL_COUNTERS.reset()
        solo.execute(_discover("staples", 3))
        assert passes_batch == KERNEL_COUNTERS.total()


class TestPublishOnce:
    def test_batch_publishes_the_table_once(self):
        """N distinct cold specs over one dataset: one plane publication."""
        with ParallelEngine(jobs=2) as engine:
            service = AnalysisService(engine=engine)
            service.register("staples", columns=_columns(4))
            specs = [_discover("staples", seed) for seed in range(3)]

            PLANE_STATS.reset()
            plan = plan_batch(service, specs)
            results = execute_plan(service, plan)
            assert PLANE_STATS.table_publications == 1
            assert PLANE_STATS.table_republications >= len(specs)
            if PLANE_STATS.table_segments:  # shm transport available
                assert PLANE_STATS.table_segments == 1

            # The one-shot loop re-publishes (and re-creates the segment)
            # once per request: that is exactly what the pin removes.
            loop = AnalysisService(engine=engine)
            loop.register("staples", columns=_columns(4))
            PLANE_STATS.reset()
            loop_results = [loop.execute(spec) for spec in specs]
            assert PLANE_STATS.table_publications == len(specs)

            for planned, oneshot in zip(results, loop_results):
                assert planned.payload == oneshot.payload
