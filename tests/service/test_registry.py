"""Tests for the dataset registry (dedup + entropy-cache sharing)."""

from __future__ import annotations

import pytest

from repro.infotheory.cache import EntropyEngine
from repro.relation.table import Table
from repro.service.registry import DatasetRegistry


def _table():
    return Table.from_columns(
        {
            "T": ["a", "b", "a", "b", "a", "a"],
            "Y": [1, 0, 1, 1, 0, 1],
        }
    )


class TestRegistration:
    def test_register_and_get(self):
        registry = DatasetRegistry()
        entry, reused = registry.register("d", _table())
        assert not reused
        assert registry.get("d") is entry
        assert registry.names() == ["d"]
        assert len(registry) == 1

    def test_same_content_shares_table_instance(self):
        registry = DatasetRegistry()
        first, _ = registry.register("one", _table())
        second, reused = registry.register("two", _table())
        assert reused
        assert second.table is first.table
        assert second.fingerprint == first.fingerprint

    def test_shared_instance_shares_entropy_cache(self):
        registry = DatasetRegistry()
        first, _ = registry.register("one", _table())
        second, _ = registry.register("two", _table())
        EntropyEngine(first.table).entropy(["T", "Y"])
        # The alias sees the warm memo: a new engine over it hits the cache.
        engine = EntropyEngine(second.table)
        engine.entropy(["T", "Y"])
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 0

    def test_rebind_name_to_different_content(self):
        registry = DatasetRegistry()
        registry.register("d", _table())
        other = Table.from_columns({"T": ["x", "y"], "Y": [0, 1]})
        entry, reused = registry.register("d", other)
        assert not reused
        assert registry.get("d") is entry
        assert len(registry) == 1

    def test_rebinding_prunes_orphaned_tables(self):
        registry = DatasetRegistry()
        for index in range(10):
            table = Table.from_columns({"T": ["a", "b"], "Y": [index, 1]})
            registry.register("ephemeral", table)
        # Only the latest content is still referenced; a long-lived
        # service must not accumulate the nine orphans.
        assert registry.n_tables == 1
        keep, _ = registry.register("keep", _table())
        registry.register("alias", _table())  # shares keep's table
        assert registry.n_tables == 2
        assert registry.get("alias").table is keep.table

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            DatasetRegistry().register("", _table())

    def test_unknown_name_raises_with_known_names(self):
        registry = DatasetRegistry()
        registry.register("known", _table())
        with pytest.raises(KeyError, match="known"):
            registry.get("missing")

    def test_describe_reports_cache_sizes(self):
        registry = DatasetRegistry()
        entry, _ = registry.register("d", _table())
        EntropyEngine(entry.table).entropy(["T"])
        (summary,) = registry.describe()
        assert summary["name"] == "d"
        assert summary["n_rows"] == 6
        assert summary["entropy_cache_sizes"] == {"miller_madow": 1}
