"""Durable async jobs: the journal, crash-resume, and compaction safety.

The contract: with ``job_journal`` set, every job lifecycle transition
is written ahead to an append-only JSONL log, and a *restarted* service
pointed at the same directory resumes queued and running-but-unfinished
jobs under their original ids -- warm specs complete instantly off the
disk result cache, cold ones recompute **byte-identically** (results
are deterministic functions of dataset content, spec, and seed).

Corruption is data loss bounded to the torn line: truncated tails and
interleaved partial records are skipped and counted, replay is
idempotent, and compaction never drops a ``finished`` record whose
result bytes are not durably in the disk cache (the fault harness tears
the cache write to prove it).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.datasets import staples_data
from repro.service import faults
from repro.service.client import JobLostError, ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.jobs import DONE, ERROR, RUNNING, JobManager
from repro.service.journal import FINISHED, JobJournal
from repro.service.spec import spec_from_dict

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"
SQL2 = "SELECT Region, avg(Price) FROM t GROUP BY Region"


def _columns(seed=51):
    table = staples_data(n_rows=200, seed=seed)
    return {name: table.column(name) for name in table.columns}


def _spec(sql=SQL, dataset="d"):
    return spec_from_dict({"kind": "query", "dataset": dataset, "sql": sql})


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test starts and ends with no armed fault plan."""
    faults.clear()
    yield
    faults.clear()


class TestCrashResume:
    def test_restart_resumes_queued_and_running_jobs(self, tmp_path):
        """The acceptance bar: kill a service mid-job, restart against the
        same journal, and both the running and the queued job complete
        with bytes identical to an unjournaled control."""
        journal_dir = str(tmp_path / "journal")
        source = _columns()
        control = AnalysisService()
        control.register("d", columns=source)
        expected = {
            SQL: control.execute(_spec(SQL)).payload,
            SQL2: control.execute(_spec(SQL2)).payload,
        }

        crashed = AnalysisService(job_workers=1, job_journal=journal_dir)
        crashed.register("d", columns=source)
        gate = threading.Event()
        original_compute = crashed._compute

        def _blocked(spec, entry):
            gate.wait(60)
            return original_compute(spec, entry)

        crashed._compute = _blocked
        running = crashed.job_manager.submit(_spec(SQL))
        queued = crashed.job_manager.submit(_spec(SQL2))
        deadline = time.monotonic() + 30
        while running.status != RUNNING and time.monotonic() < deadline:
            time.sleep(0.01)
        assert running.status == RUNNING  # pinned mid-compute, journaled
        assert queued.status != DONE

        # "Restart": a fresh service over the same journal directory (the
        # first one is still wedged -- exactly what a crash looks like to
        # the journal, which has submitted/started but no terminal lines).
        restarted = AnalysisService(job_journal=journal_dir)
        restarted.register("d", columns=source)
        summary = restarted.recover_jobs()
        assert summary["resumed"] == 2
        assert summary["corrupt"] == 0
        for job_id, sql in ((running.id, SQL), (queued.id, SQL2)):
            job = restarted.job_manager.wait(job_id, timeout=120)
            assert job.id == job_id  # original ids survive the restart
            assert job.status == DONE
            assert job.service_result().payload == expected[sql]
        # Fresh ids start past every replayed id -- no collisions.
        fresh = restarted.job_manager.submit(_spec(SQL))
        assert fresh.id not in (running.id, queued.id)

        gate.set()
        crashed.close()
        restarted.close()
        control.close()

    def test_warm_resume_completes_without_recompute(self, tmp_path):
        """A resumed job whose bytes are already in the shared disk cache
        completes off the cache -- the compute path must not run."""
        journal_dir = str(tmp_path / "journal")
        disk = str(tmp_path / "cache")
        source = _columns()
        warmer = AnalysisService(disk_cache=disk)
        warmer.register("d", columns=source)
        spec = _spec(SQL)
        expected = warmer.execute(spec).payload
        fingerprint = warmer.registry.get("d").fingerprint
        warmer.close()

        # A crashed server left a submitted+started job behind.
        journal = JobJournal(journal_dir)
        journal.record_submitted("j00000001", spec.to_dict())
        journal.record_started("j00000001")

        restarted = AnalysisService(job_journal=journal_dir, disk_cache=disk)
        restarted.register("d", columns=source)

        def _no_compute(spec, entry):  # noqa: ARG001 - signature parity
            raise AssertionError("warm resume must not recompute")

        restarted._compute = _no_compute
        assert restarted.recover_jobs()["resumed"] == 1
        job = restarted.job_manager.wait("j00000001", timeout=60)
        assert job.status == DONE
        assert job.key == spec.request_key(fingerprint)
        assert job.service_result().payload == expected
        restarted.close()

    def test_recover_is_idempotent_and_skips_unknown_datasets(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        journal = JobJournal(journal_dir)
        journal.record_submitted("j00000001", _spec(SQL).to_dict())
        journal.record_submitted(
            "j00000002", _spec(SQL, dataset="never-registered").to_dict()
        )
        service = AnalysisService(job_journal=journal_dir)
        service.register("d", columns=_columns())
        first = service.recover_jobs()
        assert first["resumed"] == 1
        assert first["skipped"] == 1  # unknown dataset stays journaled
        listing = service.job_manager.list()
        second = service.recover_jobs()
        assert second["resumed"] == 0  # replaying twice changes nothing
        assert [job["id"] for job in service.job_manager.list()] == [
            job["id"] for job in listing
        ]
        service.close()

    def test_failed_jobs_restore_terminal_state_without_recompute(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        journal = JobJournal(journal_dir)
        journal.record_submitted("j00000001", _spec(SQL).to_dict())
        journal.record_started("j00000001")
        journal.record_failed("j00000001", "unknown dataset 'd'", 404)
        service = AnalysisService(job_journal=journal_dir)
        service.register("d", columns=_columns())
        summary = service.recover_jobs()
        assert summary["restored_failed"] == 1
        assert summary["resumed"] == 0
        job = service.job_manager.get("j00000001")
        assert job.status == ERROR
        assert job.error == "unknown dataset 'd'"
        assert job.error_status == 404
        service.close()


class TestJournalCorruption:
    def test_truncated_trailing_line_is_skipped_and_healed(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.record_submitted("j00000001", _spec(SQL).to_dict())
        journal.record_submitted("j00000002", _spec(SQL2).to_dict())
        # Crash mid-write: the trailing record loses its tail.
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:-15])
        state = journal.replay()
        assert state.corrupt_lines == 1
        assert set(state.records) == {"j00000001"}
        # Reopen (the restart path): the tail is re-terminated, so the
        # next append starts a fresh record instead of gluing onto junk.
        reopened = JobJournal(str(tmp_path))
        assert reopened.path.read_bytes().endswith(b"\n")
        reopened.record_submitted("j00000003", _spec(SQL2).to_dict())
        state = reopened.replay()
        assert set(state.records) == {"j00000001", "j00000003"}
        assert state.corrupt_lines == 1

    def test_fault_injected_torn_write_interleaves_partial_records(self, tmp_path):
        # The second append is torn mid-record; the third glues onto the
        # partial line -- replay must lose exactly those two, as one
        # corrupt line, and keep everything else.
        faults.install(
            [{"site": "journal.append", "action": "torn", "keep_bytes": 10, "after": 1}]
        )
        journal = JobJournal(str(tmp_path))
        journal.record_submitted("j00000001", _spec(SQL).to_dict())
        journal.record_submitted("j00000002", _spec(SQL2).to_dict())
        journal.record_submitted("j00000003", _spec(SQL).to_dict())
        assert faults.active().fired("journal.append") == 1
        state = journal.replay()
        assert set(state.records) == {"j00000001"}
        assert state.corrupt_lines == 1
        assert journal.stats()["corrupt_skipped"] == 1

    def test_replay_twice_is_identical_on_a_corrupt_journal(self, tmp_path):
        faults.install(
            [{"site": "journal.append", "action": "torn", "keep_bytes": 7, "after": 2}]
        )
        journal = JobJournal(str(tmp_path))
        journal.record_submitted("j00000001", _spec(SQL).to_dict())
        journal.record_started("j00000001")
        journal.record_finished("j00000001", "some-key")  # torn
        first = journal.replay()
        second = journal.replay()
        assert first.records == second.records
        assert first.corrupt_lines == second.corrupt_lines == 1
        # The finished line was the torn one: the job replays unfinished
        # (and would be resumed -- deterministic recompute, same bytes).
        assert first.records["j00000001"].status != FINISHED


class TestCompactionSafety:
    def test_compaction_keeps_finished_records_not_yet_on_disk(self, tmp_path):
        """Satellite: a finished record whose result bytes never reached
        the disk cache (torn write) must survive compaction -- dropping
        it would lose the only path back to the result."""
        journal_dir = str(tmp_path / "journal")
        disk = str(tmp_path / "cache")
        source = _columns()
        service = AnalysisService(job_journal=journal_dir, disk_cache=disk)
        service.register("d", columns=source)
        fingerprint = service.registry.get("d").fingerprint
        lost_key = _spec(SQL).request_key(fingerprint)
        # Tear exactly the first job's cache write; the second lands.
        faults.install(
            [{"site": "cache.disk_write", "action": "error", "match": {"key": lost_key}}]
        )
        manager = service.job_manager
        lost = manager.wait(manager.submit(_spec(SQL)).id, timeout=120)
        durable = manager.wait(manager.submit(_spec(SQL2)).id, timeout=120)
        assert lost.status == durable.status == DONE
        assert service.cache.stats.disk_errors >= 1
        assert not service.cache.on_disk(lost.key)
        assert service.cache.on_disk(durable.key)

        summary = manager.journal.compact(service.cache.on_disk)
        assert summary["written"] is True
        assert summary["dropped"] == 1
        state = manager.journal.replay()
        assert lost.id in state.records  # kept: bytes not durable
        assert durable.id not in state.records  # dropped: bytes on disk
        assert state.records[lost.id].status == FINISHED
        expected = lost.service_result().payload
        service.close()

        # A restart recomputes the kept job byte-identically.
        faults.clear()
        restarted = AnalysisService(job_journal=journal_dir, disk_cache=disk)
        restarted.register("d", columns=source)
        assert restarted.recover_jobs()["resumed"] == 1
        job = restarted.job_manager.wait(lost.id, timeout=120)
        assert job.status == DONE
        assert job.service_result().payload == expected
        restarted.close()

    def test_terminal_records_trigger_automatic_compaction(self, tmp_path):
        disk = str(tmp_path / "cache")
        service = AnalysisService(disk_cache=disk)
        service.register("d", columns=_columns())
        journal = JobJournal(str(tmp_path / "journal"), compact_every=2)
        manager = JobManager(service, workers=1, journal=journal)
        manager.wait(manager.submit(_spec(SQL)).id, timeout=120)
        manager.wait(manager.submit(_spec(SQL2)).id, timeout=120)
        assert journal.compactions >= 1
        # Both results are on disk, so both finished records compacted away.
        assert journal.replay().records == {}
        manager.close()
        service.close()


class TestJobLostError:
    def test_lost_job_raises_typed_error_carrying_the_spec(self):
        service = AnalysisService()
        service.register("d", columns=_columns())
        server = make_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
        try:
            spec = {"kind": "query", "dataset": "d", "sql": SQL}
            accepted = client.submit(spec)
            client.wait(accepted["job_id"], timeout=120)
            # Simulate total state loss (a restart without a journal).
            with service.job_manager._lock:
                service.job_manager._jobs.pop(accepted["job_id"])
            with pytest.raises(JobLostError) as excinfo:
                client.job(accepted["job_id"])
            assert excinfo.value.status == 404
            assert excinfo.value.job_id == accepted["job_id"]
            assert excinfo.value.spec == spec  # enough to re-submit
            # Ids this client never submitted carry no spec.
            with pytest.raises(JobLostError) as excinfo:
                client.job("j99999999")
            assert excinfo.value.spec is None
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_journal_counters_surface_in_stats(self, tmp_path):
        service = AnalysisService(job_journal=str(tmp_path))
        service.register("d", columns=_columns())
        manager = service.job_manager
        manager.wait(manager.submit(_spec(SQL)).id, timeout=120)
        stats = manager.stats()
        assert stats["journal"]["appended"] >= 3  # submitted/started/finished
        assert stats["journal"]["write_errors"] == 0
        assert stats["recovered"] == 0
        assert json.dumps(stats)  # JSON-ready for /stats
        service.close()
