"""Tests for :class:`AnalysisService` (transport-independent)."""

from __future__ import annotations

import pytest

from repro.core.hypdb import HypDB
from repro.datasets import staples_data
from repro.relation.groupby import group_by_average
from repro.service.core import AnalysisService, make_test

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"


@pytest.fixture(scope="module")
def table():
    return staples_data(n_rows=1500, seed=4)


@pytest.fixture
def service(table):
    service = AnalysisService()
    service.register("staples", columns={name: table.column(name) for name in table.columns})
    return service


class TestRegister:
    def test_register_sources_are_exclusive(self, service):
        with pytest.raises(ValueError, match="exactly one"):
            service.register("x", columns={"A": [1]}, csv_path="/tmp/x.csv")
        with pytest.raises(ValueError, match="exactly one"):
            service.register("x")

    def test_rows_require_column_names(self, service):
        with pytest.raises(ValueError, match="column_names"):
            service.register("x", rows=[[1, 2]])

    def test_register_rows(self, service):
        summary = service.register(
            "tiny", rows=[["a", 1], ["b", 0]], column_names=["T", "Y"]
        )
        assert summary["n_rows"] == 2
        assert summary["columns"] == ["T", "Y"]

    def test_register_csv(self, service, table, tmp_path):
        import csv

        path = tmp_path / "d.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.columns)
            writer.writerows(table.rows())
        summary = service.register("from_csv", csv_path=str(path))
        # Identical content -> deduplicated against the fixture dataset.
        assert summary["reused"]
        assert summary["fingerprint"] == service.registry.get("staples").fingerprint


class TestAnalyze:
    def test_matches_direct_api_byte_for_byte(self, service, table):
        response = service.analyze(
            "staples", SQL, covariates=["Distance"], mediators=[], seed=7
        )
        direct = HypDB(table, seed=7).analyze(SQL, covariates=["Distance"], mediators=[])
        assert response.payload == direct.json_bytes()
        assert not response.cached

    def test_warm_path_returns_identical_bytes(self, service):
        cold = service.analyze("staples", SQL, covariates=["Distance"], mediators=[], seed=7)
        warm = service.analyze("staples", SQL, covariates=["Distance"], mediators=[], seed=7)
        assert warm.cached
        assert warm.payload == cold.payload

    def test_seed_is_part_of_the_key(self, service):
        service.analyze("staples", SQL, covariates=["Distance"], mediators=[], seed=7)
        other = service.analyze("staples", SQL, covariates=["Distance"], mediators=[], seed=8)
        # A different seed is a different cache entry (even when the hybrid
        # test's parametric branch makes the payloads coincide).
        assert not other.cached

    def test_params_are_part_of_the_key(self, service):
        service.analyze("staples", SQL, covariates=["Distance"], mediators=[], seed=7)
        without_direct = service.analyze(
            "staples", SQL, covariates=["Distance"], mediators=[], seed=7,
            compute_direct=False,
        )
        assert not without_direct.cached

    def test_unknown_dataset_raises_keyerror(self, service):
        with pytest.raises(KeyError, match="unknown dataset"):
            service.analyze("nope", SQL)


class TestQueryDiscoverWhatIf:
    def test_query_matches_group_by_average(self, service, table):
        response = service.query("staples", SQL)
        answer = group_by_average(table, ("Income",), ("Price",))
        rows = response.result["rows"]
        assert [row["count"] for row in rows] == [row.count for row in answer.rows]
        assert rows[0]["averages"][0] == pytest.approx(answer.rows[0].averages[0])
        assert service.query("staples", SQL).cached

    def test_discover_uses_chi2_quickly(self, service, table):
        response = service.discover("staples", "Income", outcome="Price", test="chi2")
        direct = HypDB(table, test=make_test("chi2", 0), seed=0).discoverer.discover(
            table, "Income", outcome="Price"
        )
        assert response.result["covariates"] == list(direct.covariates)
        assert service.discover("staples", "Income", outcome="Price", test="chi2").cached

    def test_whatif_with_explicit_covariates(self, service, table):
        response = service.whatif(
            "staples", "Income", "Price", covariates=["Distance"]
        )
        result = response.result
        assert result["covariates"] == ["Distance"]
        assert len(result["interventions"]) == 2
        assert result["n_rows"] == table.n_rows

    def test_whatif_where_restricts_subpopulation(self, service, table):
        response = service.whatif(
            "staples", "Income", "Price", covariates=["Distance"],
            where_sql="Region IN ('urban')",
        )
        assert response.result["n_rows"] < table.n_rows

    def test_unknown_test_name_rejected(self, service):
        with pytest.raises(ValueError, match="unknown test"):
            service.discover("staples", "Income", test="bogus")


class TestBatch:
    def test_batch_shares_the_cache(self, service):
        results = service.batch(
            [
                {"kind": "query", "dataset": "staples", "sql": SQL},
                {"kind": "query", "dataset": "staples", "sql": SQL},
            ]
        )
        assert [result.cached for result in results] == [False, True]
        assert results[0].payload == results[1].payload

    def test_batch_rejects_unknown_kind(self, service):
        with pytest.raises(ValueError, match="unknown kind"):
            service.batch([{"kind": "explode"}])


class TestDiskCache:
    def test_restarted_service_serves_from_disk(self, table, tmp_path):
        columns = {name: table.column(name) for name in table.columns}
        first = AnalysisService(disk_cache=str(tmp_path / "cache"))
        first.register("staples", columns=columns)
        cold = first.query("staples", SQL)

        second = AnalysisService(disk_cache=str(tmp_path / "cache"))
        second.register("staples", columns=columns)
        warm = second.query("staples", SQL)
        assert warm.cached
        assert warm.payload == cold.payload
        assert second.cache.stats.disk_hits == 1


class TestStats:
    def test_stats_shape(self, service):
        service.query("staples", SQL)
        stats = service.stats()
        assert stats["requests"] == 1
        assert stats["engine"] == "SerialEngine"
        assert stats["datasets"][0]["name"] == "staples"
        assert stats["result_cache"]["stores"] == 1
