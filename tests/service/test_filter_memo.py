"""The (parent fingerprint, predicate) -> child fingerprint memo.

WHERE-filtered context tables are rebuilt per request, but their content
fingerprint -- the O(n) SHA-256 the dataset plane and result cache key on
-- must only ever be hashed once per (dataset, clause).
"""

from __future__ import annotations

import pytest

from repro.relation.predicates import Eq, In
from repro.relation.table import Table
from repro.service.core import AnalysisService
from repro.service.registry import DatasetRegistry


@pytest.fixture
def registry_entry():
    registry = DatasetRegistry()
    table = Table.from_columns(
        {
            "T": [0, 1, 0, 1, 0, 1, 1, 0] * 50,
            "Y": [1, 0, 1, 1, 0, 1, 0, 0] * 50,
            "Z": ["u", "v", "u", "w", "v", "w", "u", "v"] * 50,
        }
    )
    entry, _ = registry.register("d", table)
    return registry, entry


class TestFilteredTable:
    def test_repeat_clause_skips_the_hash(self, registry_entry):
        registry, entry = registry_entry
        predicate = In("Z", ["u", "v"])
        first = registry.filtered_table(entry, predicate)
        assert first._fingerprint is not None  # miss: hashed and memoized
        assert registry.filter_memo_size == 1
        second = registry.filtered_table(entry, In("Z", ["u", "v"]))
        # Hit: the fresh view's fingerprint is seeded, not re-hashed.
        assert second is not first
        assert second._fingerprint == first.fingerprint()
        assert registry.filter_memo_size == 1

    def test_distinct_clauses_get_distinct_fingerprints(self, registry_entry):
        registry, entry = registry_entry
        narrow = registry.filtered_table(entry, Eq("Z", "u"))
        wide = registry.filtered_table(entry, In("Z", ["u", "v"]))
        assert narrow.fingerprint() != wide.fingerprint()
        assert registry.filter_memo_size == 2

    def test_memo_keys_on_parent_content_not_name(self, registry_entry):
        registry, entry = registry_entry
        alias, reused = registry.register("alias", entry.table)
        assert reused
        registry.filtered_table(entry, Eq("Z", "u"))
        assert registry.filter_memo_size == 1
        registry.filtered_table(alias, Eq("Z", "u"))
        assert registry.filter_memo_size == 1  # same parent content: one entry

    def test_none_predicate_passes_parent_through(self, registry_entry):
        registry, entry = registry_entry
        assert registry.filtered_table(entry, None) is entry.table
        assert registry.filter_memo_size == 0

    def test_memo_is_bounded(self, registry_entry, monkeypatch):
        import repro.service.registry as registry_module

        monkeypatch.setattr(registry_module, "FILTER_MEMO_LIMIT", 3)
        registry, entry = registry_entry
        for value in ["u", "v", "w"]:
            registry.filtered_table(entry, Eq("Z", value))
            registry.filtered_table(entry, Eq("T", 0) if value == "w" else Eq("T", 1))
        assert registry.filter_memo_size <= 3


class TestSeededFingerprint:
    def test_seed_matches_hash(self):
        table = Table.from_columns({"A": [1, 2, 3]})
        digest = table.fingerprint()
        clone = Table.from_columns({"A": [1, 2, 3]})
        clone.set_fingerprint(digest)
        assert clone.fingerprint() == digest

    def test_conflicting_seed_rejected(self):
        table = Table.from_columns({"A": [1, 2, 3]})
        table.fingerprint()
        with pytest.raises(ValueError, match="disagrees"):
            table.set_fingerprint("0" * 64)


class TestServiceIntegration:
    def test_where_clause_payloads_stable_and_memoized(self):
        service = AnalysisService()
        try:
            service.register(
                "flights",
                columns={
                    "T": [0, 1] * 200,
                    "Y": [1, 0, 0, 1] * 100,
                    "Z": ["a", "b", "c", "d"] * 100,
                },
            )
            first = service.whatif(
                "flights", "T", "Y", where_sql="Z IN ('a','b')", test="chi2", seed=1
            )
            # Different params -> result-cache miss, but the same WHERE
            # clause -> fingerprint-memo hit on the re-filtered view.
            second = service.whatif(
                "flights", "T", "Y", where_sql="Z IN ('a','b')", test="chi2", seed=2
            )
            assert not first.cached
            assert not second.cached
            assert first.result["interventions"] == second.result["interventions"]
            assert service.registry.filter_memo_size >= 1
        finally:
            service.close()
