"""Single-flight coalescing: concurrent identical cold requests compute once."""

from __future__ import annotations

import threading

import pytest

from repro.datasets import staples_data
from repro.relation.table import KERNEL_COUNTERS
from repro.service.core import AnalysisService
from repro.service.spec import DiscoverSpec

SPEC = dict(dataset="staples", treatment="Income", outcome="Price", test="chi2")


@pytest.fixture
def columns():
    table = staples_data(n_rows=1200, seed=4)
    return {name: table.column(name) for name in table.columns}


def _fresh_service(columns) -> AnalysisService:
    service = AnalysisService()
    service.register("staples", columns=columns)
    return service


def test_concurrent_identical_requests_coalesce(columns):
    # Reference: the counting passes one solo cold request costs.
    solo = _fresh_service(columns)
    KERNEL_COUNTERS.reset()
    reference = solo.execute(DiscoverSpec(**SPEC))
    solo_passes = KERNEL_COUNTERS.total()
    assert solo_passes > 0

    service = _fresh_service(columns)
    barrier = threading.Barrier(2)
    results, errors = [], []

    def hit() -> None:
        try:
            barrier.wait()
            results.append(service.execute(DiscoverSpec(**SPEC)))
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    KERNEL_COUNTERS.reset()
    threads = [threading.Thread(target=hit) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors

    # One computation's worth of kernel passes, not two.
    assert KERNEL_COUNTERS.total() == solo_passes
    assert service.stats()["coalesced"] == 1
    assert {result.payload for result in results} == {reference.payload}
    # Exactly one leader computed cold; the follower reports coalesced.
    assert sorted(result.coalesced for result in results) == [False, True]


def test_coalesced_follower_sees_the_leaders_error(columns):
    service = _fresh_service(columns)
    release = threading.Event()
    original = service._compute

    def blocking_compute(spec, entry):
        release.wait(timeout=10)
        return original(spec, entry)

    service._compute = blocking_compute
    bad = DiscoverSpec(dataset="staples", treatment="Nope", test="chi2")
    outcomes = []

    def hit() -> None:
        try:
            outcomes.append(service.execute(bad))
        except Exception as error:
            outcomes.append(error)

    threads = [threading.Thread(target=hit) for _ in range(2)]
    threads[0].start()
    threads[1].start()
    release.set()
    for thread in threads:
        thread.join()
    # Both callers observe the same failure; nothing was cached.
    assert all(isinstance(outcome, Exception) for outcome in outcomes)
    assert len(service.cache) == 0


def test_sequential_requests_do_not_coalesce(columns):
    service = _fresh_service(columns)
    cold = service.execute(DiscoverSpec(**SPEC))
    warm = service.execute(DiscoverSpec(**SPEC))
    assert not cold.cached and warm.cached
    assert not warm.coalesced  # plain cache hit, no flight involved
    assert service.stats()["coalesced"] == 0
