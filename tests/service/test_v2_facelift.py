"""Tests for the v2 API facelift: long-poll job reads, the dataset
catalog, and the deprecation-tagged v1 surface."""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse

import pytest

from repro.datasets import staples_data
from repro.service.client import ServiceClient, ServiceError
from repro.service.core import AnalysisService
from repro.service.http import MAX_JOB_WAIT_SECONDS, make_server, parse_wait_seconds
from repro.service.spec import QuerySpec

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"


@pytest.fixture(scope="module")
def columns():
    table = staples_data(n_rows=500, seed=11)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture
def served(columns):
    service = AnalysisService()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    client.register("staples", columns=columns)
    yield client, service
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


def raw_request(client, method, path, body=None):
    """One raw request returning (status, headers, body) for header checks."""
    parts = urllib.parse.urlsplit(client.base_url)
    connection = http.client.HTTPConnection(parts.hostname, parts.port, timeout=30)
    try:
        connection.request(
            method,
            path,
            body=None if body is None else json.dumps(body).encode(),
            headers={"Content-Type": "application/json"} if body is not None else {},
        )
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestLongPoll:
    def test_wait_for_blocks_until_the_job_turns_terminal(self):
        """A long-poll waiter wakes on the terminal transition, not by
        polling: it must block while the job runs and return promptly
        (well before its own deadline) once the job finishes."""
        service = AnalysisService()
        service.register("d", columns={"a": [1, 2, 1, 2], "b": [3.0, 4.0, 5.0, 6.0]})
        gate = threading.Event()
        real_execute = service.execute

        def gated_execute(spec):
            gate.wait(30)
            return real_execute(spec)

        service.execute = gated_execute
        try:
            manager = service.job_manager
            job = manager.submit(QuerySpec(dataset="d", sql="SELECT a, avg(b) FROM d GROUP BY a"))
            # Bounded wait while the worker is gated: returns unfinished.
            assert not manager.wait_for(job.id, 0.05).finished()
            start = time.monotonic()
            threading.Timer(0.3, gate.set).start()
            finished = manager.wait_for(job.id, 30.0)
            elapsed = time.monotonic() - start
            assert finished.finished()
            assert 0.25 <= elapsed < 10.0  # woken by notify, not the deadline
        finally:
            gate.set()
            service.close()

    def test_http_wait_returns_the_finished_job_in_one_request(self, served):
        client, _ = served
        accepted = client.submit(
            {"kind": "query", "dataset": "staples", "sql": SQL}
        )
        response = client.job(accepted["job_id"], wait=30)
        assert response["job"]["status"] == "done"
        assert response["result"]["rows"]

    def test_malformed_wait_is_400(self, served):
        client, _ = served
        accepted = client.submit({"kind": "query", "dataset": "staples", "sql": SQL})
        with pytest.raises(ServiceError) as excinfo:
            client._get(f"/v2/jobs/{accepted['job_id']}?wait=forever")
        assert excinfo.value.status == 400
        assert "wait" in excinfo.value.message

    def test_wait_seconds_parsing_clamps_and_validates(self):
        assert parse_wait_seconds("wait=5") == 5.0
        assert parse_wait_seconds("") == 0.0
        assert parse_wait_seconds("wait=-3") == 0.0
        assert parse_wait_seconds("wait=1e9") == MAX_JOB_WAIT_SECONDS
        with pytest.raises(ValueError, match="wait"):
            parse_wait_seconds("wait=soon")

    def test_client_wait_uses_long_poll_rounds(self, served):
        client, _ = served
        finished = client.submit_and_wait(
            {"kind": "query", "dataset": "staples", "sql": SQL}
        )
        assert finished["job"]["status"] == "done"


class TestDatasetCatalog:
    def test_catalog_lists_fingerprint_columns_and_rows(self, served):
        client, _ = served
        summary = client.register("tiny", columns={"x": [1, 2], "y": [3.0, 4.0]})["result"]
        catalog = client.datasets()
        assert set(catalog) == {"staples", "tiny"}
        assert catalog["tiny"] == {
            "fingerprint": summary["fingerprint"],
            "columns": ["x", "y"],
            "n_rows": 2,
        }
        assert catalog["staples"]["n_rows"] == 500

    def test_content_identical_names_share_a_fingerprint(self, served):
        client, _ = served
        client.register("twin", columns={"x": [1, 2], "y": [3.0, 4.0]})
        client.register("tiny", columns={"x": [1, 2], "y": [3.0, 4.0]})
        catalog = client.datasets()
        assert catalog["twin"]["fingerprint"] == catalog["tiny"]["fingerprint"]

    def test_empty_catalog(self):
        service = AnalysisService()
        try:
            server = make_server(service)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            assert client.datasets() == {}
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        finally:
            service.close()


class TestV1Deprecation:
    def test_v1_reads_carry_deprecation_and_successor_headers(self, served):
        client, _ = served
        status, headers, _ = raw_request(
            client, "POST", "/query", {"dataset": "staples", "sql": SQL}
        )
        assert status == 200
        assert headers["Deprecation"] == "true"
        assert headers["Link"] == '</v2/jobs>; rel="successor-version"'

    def test_v1_batch_links_to_the_v2_planner(self, served):
        client, _ = served
        status, headers, _ = raw_request(
            client,
            "POST",
            "/batch",
            {"requests": [{"kind": "query", "dataset": "staples", "sql": SQL}]},
        )
        assert status == 200
        assert headers["Deprecation"] == "true"
        assert headers["Link"] == '</v2/batch>; rel="successor-version"'

    def test_v2_and_infrastructure_endpoints_are_untagged(self, served):
        client, _ = served
        for method, path, body in (
            ("POST", "/v2/batch", {"requests": []}),
            ("POST", "/register", {"name": "h", "columns": {"x": [1]}}),
            ("GET", "/stats", None),
            ("GET", "/health", None),
        ):
            status, headers, _ = raw_request(client, method, path, body)
            assert status == 200
            assert "Deprecation" not in headers, path

    def test_stats_count_only_v1_requests(self, served):
        client, _ = served
        base = client.stats()["v1_requests"]
        client.query("staples", SQL)  # v1
        client.batch([{"kind": "query", "dataset": "staples", "sql": SQL}])  # v1
        client.submit_and_wait({"kind": "query", "dataset": "staples", "sql": SQL})  # v2
        client.batch_v2([{"kind": "query", "dataset": "staples", "sql": SQL}])  # v2
        assert client.stats()["v1_requests"] == base + 2
