"""Unit tests for the discrete Bayesian network sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.causal.bayesnet import DiscreteBayesNet
from repro.causal.dag import CausalDAG


@pytest.fixture
def chain() -> CausalDAG:
    return CausalDAG(["A", "B"], [("A", "B")])


class TestValidation:
    def test_missing_cpt_rejected(self, chain):
        with pytest.raises(ValueError, match="missing CPT"):
            DiscreteBayesNet(chain, {"A": 2, "B": 2}, {"A": np.array([[0.5, 0.5]])})

    def test_missing_cardinality_rejected(self, chain):
        with pytest.raises(ValueError, match="missing cardinalities"):
            DiscreteBayesNet(chain, {"A": 2}, {})

    def test_cardinality_below_two_rejected(self, chain):
        with pytest.raises(ValueError, match=">= 2"):
            DiscreteBayesNet(
                chain,
                {"A": 1, "B": 2},
                {"A": np.array([[1.0]]), "B": np.array([[0.5, 0.5]])},
            )

    def test_wrong_cpt_shape_rejected(self, chain):
        with pytest.raises(ValueError, match="shape"):
            DiscreteBayesNet(
                chain,
                {"A": 2, "B": 2},
                {"A": np.array([[0.5, 0.5]]), "B": np.array([[0.5, 0.5]])},
            )

    def test_unnormalized_rows_rejected(self, chain):
        with pytest.raises(ValueError, match="sum to 1"):
            DiscreteBayesNet(
                chain,
                {"A": 2, "B": 2},
                {
                    "A": np.array([[0.5, 0.5]]),
                    "B": np.array([[0.9, 0.9], [0.5, 0.5]]),
                },
            )


class TestRandomNets:
    def test_random_net_shapes(self):
        dag = CausalDAG(["A", "B", "C"], [("A", "C"), ("B", "C")])
        net = DiscreteBayesNet.random(dag, categories=3, rng=0)
        assert net.cpt("C").shape == (9, 3)
        assert net.cpt("A").shape == (1, 3)

    def test_per_node_categories(self):
        dag = CausalDAG(["A", "B"], [("A", "B")])
        net = DiscreteBayesNet.random(dag, categories={"A": 2, "B": 5}, rng=0)
        assert net.cardinality("B") == 5
        assert net.cpt("B").shape == (2, 5)

    def test_strength_spikes_rows(self):
        dag = CausalDAG([f"N{i}" for i in range(40)], [])
        flat = DiscreteBayesNet.random(dag, categories=4, strength=1.0, rng=0)
        spiky = DiscreteBayesNet.random(dag, categories=4, strength=20.0, rng=0)
        mean_max = lambda net: np.mean([net.cpt(n).max() for n in dag.nodes()])  # noqa: E731
        assert mean_max(spiky) > mean_max(flat) + 0.1


class TestSampling:
    def test_sample_shape_and_domains(self):
        dag = CausalDAG(["A", "B"], [("A", "B")])
        net = DiscreteBayesNet.random(dag, categories=3, rng=1)
        table = net.sample(500, rng=2)
        assert table.n_rows == 500
        assert set(table.columns) == {"A", "B"}
        assert set(table.column("A")) <= {0, 1, 2}

    def test_sample_respects_root_marginals(self):
        dag = CausalDAG(["A"], [])
        net = DiscreteBayesNet(dag, {"A": 2}, {"A": np.array([[0.9, 0.1]])})
        table = net.sample(20000, rng=3)
        share = table.column("A").count(1) / 20000
        assert share == pytest.approx(0.1, abs=0.01)

    def test_sample_respects_conditionals(self):
        dag = CausalDAG(["A", "B"], [("A", "B")])
        net = DiscreteBayesNet(
            dag,
            {"A": 2, "B": 2},
            {
                "A": np.array([[0.5, 0.5]]),
                "B": np.array([[0.95, 0.05], [0.1, 0.9]]),
            },
        )
        table = net.sample(20000, rng=4)
        rows = table.rows(["A", "B"])
        p_b1_given_a1 = sum(1 for a, b in rows if a == 1 and b == 1) / sum(
            1 for a, _ in rows if a == 1
        )
        assert p_b1_given_a1 == pytest.approx(0.9, abs=0.02)

    def test_domains_decode(self):
        dag = CausalDAG(["A"], [])
        net = DiscreteBayesNet(dag, {"A": 2}, {"A": np.array([[0.5, 0.5]])})
        table = net.sample(100, rng=5, domains={"A": ("no", "yes")})
        assert set(table.column("A")) <= {"no", "yes"}

    def test_collider_dependence_structure(self, rng):
        """Samples reproduce the collider's independence pattern."""
        from repro.infotheory.mutual_information import conditional_mutual_information

        dag = CausalDAG(["A", "B", "C"], [("A", "C"), ("B", "C")])
        net = DiscreteBayesNet.random(dag, categories=2, strength=8.0, rng=6)
        table = net.sample(30000, rng=7)
        marginal = conditional_mutual_information(table, "A", "B", estimator="plugin")
        conditional = conditional_mutual_information(
            table, "A", "B", ("C",), estimator="plugin"
        )
        assert marginal < 0.002
        assert conditional > marginal


class TestFromConditionals:
    def test_explicit_cpts(self):
        dag = CausalDAG(["Rain", "Wet"], [("Rain", "Wet")])
        net, domains = DiscreteBayesNet.from_conditionals(
            dag,
            {"Rain": (0, 1), "Wet": (0, 1)},
            {
                "Rain": {(): (0.7, 0.3)},
                "Wet": {(0,): (0.9, 0.1), (1,): (0.05, 0.95)},
            },
        )
        table = net.sample(20000, rng=8, domains=domains)
        rows = table.rows(["Rain", "Wet"])
        p_wet_given_rain = sum(1 for r, w in rows if r == 1 and w == 1) / sum(
            1 for r, _ in rows if r == 1
        )
        assert p_wet_given_rain == pytest.approx(0.95, abs=0.02)

    def test_missing_conditional_rejected(self):
        dag = CausalDAG(["A", "B"], [("A", "B")])
        with pytest.raises(ValueError, match="no conditional"):
            DiscreteBayesNet.from_conditionals(
                dag,
                {"A": (0, 1), "B": (0, 1)},
                {"A": {(): (0.5, 0.5)}, "B": {(0,): (0.5, 0.5)}},
            )
