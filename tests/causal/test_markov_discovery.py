"""Tests for Grow-Shrink and IAMB Markov-boundary discovery.

Oracle-driven tests validate the algorithms' logic exactly; data-driven
tests validate the statistical pipeline end to end.
"""

from __future__ import annotations

import pytest

from repro.causal.bayesnet import DiscreteBayesNet
from repro.causal.growshrink import grow_shrink_markov_blanket
from repro.causal.iamb import iamb_markov_blanket
from repro.causal.oracle import DSeparationOracle
from repro.causal.random_dag import random_erdos_renyi_dag
from repro.datasets.cancer import cancer_dag
from repro.stats.chi2 import ChiSquaredTest

ALGORITHMS = [grow_shrink_markov_blanket, iamb_markov_blanket]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestWithOracle:
    def test_paper_dag_boundary(self, algorithm, paper_dag):
        oracle = DSeparationOracle(paper_dag)
        found = algorithm(None, "T", oracle, candidates=paper_dag.nodes())
        assert found == paper_dag.markov_boundary("T")

    def test_all_nodes_cancer_dag(self, algorithm):
        dag = cancer_dag()
        oracle = DSeparationOracle(dag)
        for node in dag.nodes():
            found = algorithm(None, node, oracle, candidates=dag.nodes())
            assert found == dag.markov_boundary(node), node

    def test_random_dags(self, algorithm):
        for seed in range(5):
            dag = random_erdos_renyi_dag(10, expected_parents=1.5, rng=seed)
            oracle = DSeparationOracle(dag)
            for node in dag.nodes()[:4]:
                found = algorithm(None, node, oracle, candidates=dag.nodes())
                assert found == dag.markov_boundary(node)

    def test_isolated_node_empty_boundary(self, algorithm):
        dag = cancer_dag()
        oracle = DSeparationOracle(dag)
        found = algorithm(None, "Born_an_Even_Day", oracle, candidates=dag.nodes())
        assert found == set()

    def test_candidates_required_without_table(self, algorithm):
        oracle = DSeparationOracle(cancer_dag())
        with pytest.raises(ValueError, match="candidates"):
            algorithm(None, "Smoking", oracle)

    def test_max_blanket_caps_growth(self, algorithm, paper_dag):
        oracle = DSeparationOracle(paper_dag)
        found = algorithm(
            None, "T", oracle, candidates=paper_dag.nodes(), max_blanket=2
        )
        assert len(found) <= 2


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestWithData:
    def test_recovers_boundary_from_samples(self, algorithm):
        from tests.conftest import strong_binary_net

        dag = random_erdos_renyi_dag(6, expected_parents=1.2, rng=3)
        net, domains = strong_binary_net(dag)
        table = net.sample(30000, rng=5, domains=domains)
        test = ChiSquaredTest()
        # Check a node with a non-trivial boundary.
        target = max(dag.nodes(), key=lambda n: len(dag.markov_boundary(n)))
        found = algorithm(table, target, test)
        truth = dag.markov_boundary(target)
        # Allow one mistake: finite-sample tests are noisy.
        assert len(found.symmetric_difference(truth)) <= 1
