"""Unit tests for CausalDAG: structure, d-separation, Markov boundaries."""

from __future__ import annotations

import pytest

from repro.causal.dag import CausalDAG
from repro.datasets.cancer import cancer_dag


class TestStructure:
    def test_parents_children(self, chain_dag):
        assert chain_dag.parents("B") == {"A"}
        assert chain_dag.children("B") == {"C"}
        assert chain_dag.neighbors("B") == {"A", "C"}

    def test_ancestors_descendants(self, chain_dag):
        assert chain_dag.ancestors("C") == {"A", "B"}
        assert chain_dag.descendants("A") == {"B", "C"}

    def test_cycle_rejected(self, chain_dag):
        with pytest.raises(ValueError, match="cycle"):
            chain_dag.add_edge("C", "A")

    def test_self_loop_rejected(self, chain_dag):
        with pytest.raises(ValueError, match="self-loop"):
            chain_dag.add_edge("A", "A")

    def test_unknown_node(self, chain_dag):
        with pytest.raises(KeyError, match="unknown node"):
            chain_dag.parents("missing")

    def test_topological_order(self, paper_dag):
        order = paper_dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for source, target in paper_dag.edges():
            assert position[source] < position[target]

    def test_copy_is_independent(self, chain_dag):
        copy = chain_dag.copy()
        copy.add_edge("A", "C")
        assert not chain_dag.has_edge("A", "C")

    def test_equality_and_hash(self, chain_dag):
        same = CausalDAG(chain_dag.nodes(), chain_dag.edges())
        assert chain_dag == same
        assert hash(chain_dag) == hash(same)

    def test_is_collider(self, collider_dag):
        assert collider_dag.is_collider("A", "C", "B")
        assert not collider_dag.is_collider("A", "B", "C")

    def test_mediators(self, paper_dag):
        extended = paper_dag.copy()
        extended.add_edge("Y", "C")
        assert extended.mediators("T", "C") == {"Y"}

    def test_mediators_none_for_direct_edge(self, chain_dag):
        assert chain_dag.mediators("A", "B") == set()


class TestDSeparation:
    def test_chain_blocked_by_middle(self, chain_dag):
        assert not chain_dag.d_separated("A", "C")
        assert chain_dag.d_separated("A", "C", ["B"])

    def test_fork(self):
        dag = CausalDAG(["A", "B", "C"], [("B", "A"), ("B", "C")])
        assert not dag.d_separated("A", "C")
        assert dag.d_separated("A", "C", ["B"])

    def test_collider_blocks_marginally(self, collider_dag):
        assert collider_dag.d_separated("A", "B")

    def test_conditioning_on_collider_opens(self, collider_dag):
        assert not collider_dag.d_separated("A", "B", ["C"])

    def test_conditioning_on_collider_descendant_opens(self):
        dag = CausalDAG(["A", "B", "C", "D"], [("A", "C"), ("B", "C"), ("C", "D")])
        assert dag.d_separated("A", "B")
        assert not dag.d_separated("A", "B", ["D"])

    def test_symmetry(self, paper_dag):
        nodes = paper_dag.nodes()
        for x in nodes:
            for y in nodes:
                if x >= y:
                    continue
                assert paper_dag.d_separated(x, y) == paper_dag.d_separated(y, x)

    def test_berkson_example_from_paper(self):
        """Appendix Ex. 10.1: Peer_Pressure ⊥ Anxiety but not given Smoking."""
        dag = cancer_dag()
        assert dag.d_separated("Peer_Pressure", "Anxiety")
        assert not dag.d_separated("Peer_Pressure", "Anxiety", ["Smoking"])

    def test_set_arguments(self, paper_dag):
        assert paper_dag.d_separated(["Z"], ["W"], [])
        assert not paper_dag.d_separated(["Z", "W"], ["Y"], [])
        assert paper_dag.d_separated(["Z", "W"], ["Y"], ["T"])

    def test_isolated_node_separated_from_all(self):
        dag = cancer_dag()
        assert dag.d_separated("Born_an_Even_Day", "Car_Accident")
        assert dag.d_separated("Born_an_Even_Day", "Smoking", ["Lung_Cancer"])

    def test_overlapping_sets_connected(self, chain_dag):
        assert not chain_dag.d_separated(["A", "B"], ["B"], [])


class TestMarkovBoundary:
    def test_parents_children_spouses(self, paper_dag):
        assert paper_dag.markov_boundary("T") == {"Z", "W", "Y", "C", "D"}

    def test_root_node(self, paper_dag):
        assert paper_dag.markov_boundary("Z") == {"T", "W"}

    def test_leaf_node(self, paper_dag):
        assert paper_dag.markov_boundary("Y") == {"T"}

    def test_isolated_node(self):
        dag = cancer_dag()
        assert dag.markov_boundary("Born_an_Even_Day") == set()

    def test_boundary_d_separates_rest(self, paper_dag):
        """MB(X) must render X independent of everything else."""
        for node in paper_dag.nodes():
            boundary = paper_dag.markov_boundary(node)
            rest = set(paper_dag.nodes()) - boundary - {node}
            for other in rest:
                assert paper_dag.d_separated(node, other, sorted(boundary))


class TestBackdoor:
    def test_parents_satisfy_backdoor(self, paper_dag):
        assert paper_dag.satisfies_backdoor("T", "Y", ["Z", "W"])

    def test_empty_set_fails_with_confounder(self):
        dag = CausalDAG(["T", "Y", "U"], [("U", "T"), ("U", "Y"), ("T", "Y")])
        assert not dag.satisfies_backdoor("T", "Y", [])
        assert dag.satisfies_backdoor("T", "Y", ["U"])

    def test_descendant_of_treatment_fails(self, paper_dag):
        assert not paper_dag.satisfies_backdoor("T", "Y", ["C"])

    def test_empty_set_ok_when_exogenous(self):
        dag = CausalDAG(["T", "Y"], [("T", "Y")])
        assert dag.satisfies_backdoor("T", "Y", [])
