"""Unit tests for the d-separation CI oracle."""

from __future__ import annotations

import pytest

from repro.causal.oracle import DSeparationOracle


class TestOracle:
    def test_separated_reports_independent(self, collider_dag):
        oracle = DSeparationOracle(collider_dag)
        result = oracle.test(None, "A", "B")
        assert result.independent()
        assert result.p_value == 1.0
        assert result.statistic == 0.0

    def test_connected_reports_dependent(self, collider_dag):
        oracle = DSeparationOracle(collider_dag)
        result = oracle.test(None, "A", "B", ["C"])
        assert result.dependent()
        assert result.statistic == 1.0

    def test_counts_calls(self, chain_dag):
        oracle = DSeparationOracle(chain_dag)
        oracle.test(None, "A", "C")
        oracle.test(None, "A", "C", ["B"])
        assert oracle.calls == 2

    def test_rejects_same_variable(self, chain_dag):
        oracle = DSeparationOracle(chain_dag)
        with pytest.raises(ValueError, match="distinct"):
            oracle.test(None, "A", "A")

    def test_dag_property(self, chain_dag):
        assert DSeparationOracle(chain_dag).dag is chain_dag
