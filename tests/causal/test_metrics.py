"""Unit tests for structure-recovery metrics."""

from __future__ import annotations

import pytest

from repro.causal.dag import CausalDAG
from repro.causal.structure.metrics import F1Report, parent_recovery_f1, skeleton_f1
from repro.causal.structure.pdag import PDAG


@pytest.fixture
def truth() -> CausalDAG:
    return CausalDAG(
        ["A", "B", "C", "D"],
        [("A", "C"), ("B", "C"), ("C", "D")],
    )


class TestF1Report:
    def test_perfect(self):
        report = F1Report(true_positives=5, false_positives=0, false_negatives=0)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_zero_predictions(self):
        report = F1Report(true_positives=0, false_positives=0, false_negatives=3)
        assert report.precision == 0.0
        assert report.f1 == 0.0

    def test_intermediate(self):
        report = F1Report(true_positives=2, false_positives=2, false_negatives=2)
        assert report.precision == pytest.approx(0.5)
        assert report.recall == pytest.approx(0.5)
        assert report.f1 == pytest.approx(0.5)


class TestParentRecovery:
    def test_exact_recovery(self, truth):
        predicted = {node: truth.parents(node) for node in truth.nodes()}
        assert parent_recovery_f1(truth, predicted).f1 == 1.0

    def test_missing_parent_counts_fn(self, truth):
        predicted = {"C": {"A"}, "D": {"C"}}
        report = parent_recovery_f1(truth, predicted)
        assert report.false_negatives == 1
        assert report.false_positives == 0

    def test_extra_parent_counts_fp(self, truth):
        predicted = {"C": {"A", "B", "D"}}
        report = parent_recovery_f1(truth, predicted)
        assert report.false_positives >= 1

    def test_min_true_parents_restriction(self, truth):
        """With min_true_parents=2 only node C is scored."""
        predicted = {"C": {"A", "B"}, "D": set()}
        report = parent_recovery_f1(truth, predicted, min_true_parents=2)
        assert report.f1 == 1.0  # D's missing parent is not counted

    def test_accepts_pdag(self, truth):
        pdag = PDAG(truth.nodes())
        for source, target in truth.edges():
            pdag.orient(source, target)
        assert parent_recovery_f1(truth, pdag).f1 == 1.0

    def test_undirected_edges_not_credited(self, truth):
        pdag = PDAG(truth.nodes())
        for source, target in truth.edges():
            pdag.add_undirected(source, target)
        report = parent_recovery_f1(truth, pdag)
        assert report.true_positives == 0
        assert report.false_negatives == 3


class TestSkeletonF1:
    def test_orientation_ignored(self, truth):
        pdag = PDAG(truth.nodes())
        pdag.orient("C", "A")  # wrong direction, same adjacency
        pdag.add_undirected("B", "C")
        pdag.orient("C", "D")
        assert skeleton_f1(truth, pdag).f1 == 1.0

    def test_spurious_edge_penalized(self, truth):
        pdag = PDAG(truth.nodes())
        for source, target in truth.edges():
            pdag.orient(source, target)
        pdag.add_undirected("A", "B")
        report = skeleton_f1(truth, pdag)
        assert report.false_positives == 1
