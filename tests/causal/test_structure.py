"""Tests for the structure-learning baselines (FGS, IAMB, hill climbing)."""

from __future__ import annotations

import pytest

from repro.causal.bayesnet import DiscreteBayesNet
from repro.causal.oracle import DSeparationOracle
from repro.causal.random_dag import random_erdos_renyi_dag
from repro.causal.structure.fgs import FullGrowShrink
from repro.causal.structure.hillclimb import HillClimbLearner
from repro.causal.structure.iamb_learner import IambLearner
from repro.causal.structure.metrics import parent_recovery_f1, skeleton_f1
from repro.causal.structure.pdag import PDAG
from repro.datasets.cancer import cancer_dag
from repro.stats.chi2 import ChiSquaredTest


class TestPDAG:
    def test_orient_and_parents(self):
        pdag = PDAG(["A", "B", "C"])
        pdag.add_undirected("A", "B")
        pdag.orient("A", "B")
        assert pdag.parents("B") == {"A"}
        assert pdag.children("A") == {"B"}
        assert pdag.undirected_edges() == []

    def test_orient_conflict_raises(self):
        pdag = PDAG(["A", "B"])
        pdag.orient("A", "B")
        with pytest.raises(ValueError, match="already oriented"):
            pdag.orient("B", "A")
        assert not pdag.orient_if_possible("B", "A")

    def test_orient_same_direction_idempotent(self):
        pdag = PDAG(["A", "B"])
        pdag.orient("A", "B")
        pdag.orient("A", "B")
        assert pdag.directed_edges() == [("A", "B")]

    def test_adjacent_covers_both_kinds(self):
        pdag = PDAG(["A", "B", "C"])
        pdag.add_undirected("A", "B")
        pdag.orient("B", "C")
        assert pdag.adjacent("A", "B") and pdag.adjacent("B", "A")
        assert pdag.adjacent("B", "C")
        assert not pdag.adjacent("A", "C")

    def test_skeleton(self):
        pdag = PDAG(["A", "B", "C"])
        pdag.add_undirected("A", "B")
        pdag.orient("B", "C")
        assert pdag.skeleton() == {frozenset({"A", "B"}), frozenset({"B", "C"})}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            PDAG(["A"]).add_undirected("A", "A")


@pytest.mark.parametrize("learner_class", [FullGrowShrink, IambLearner])
class TestConstraintLearnersWithOracle:
    def test_paper_dag_parents_recovered(self, learner_class, paper_dag):
        oracle = DSeparationOracle(paper_dag)
        pdag = learner_class(oracle).learn(None, paper_dag.nodes())
        assert pdag.parents("T") == {"Z", "W"}
        assert pdag.parents("C") == {"T", "D"}
        assert parent_recovery_f1(paper_dag, pdag).f1 == 1.0

    def test_collider_orientation(self, learner_class, collider_dag):
        oracle = DSeparationOracle(collider_dag)
        pdag = learner_class(oracle).learn(None, collider_dag.nodes())
        assert pdag.parents("C") == {"A", "B"}

    def test_chain_stays_undirected(self, learner_class, chain_dag):
        """A chain's orientation is not identifiable: edges stay undirected."""
        oracle = DSeparationOracle(chain_dag)
        pdag = learner_class(oracle).learn(None, chain_dag.nodes())
        assert pdag.skeleton() == {frozenset({"A", "B"}), frozenset({"B", "C"})}
        assert pdag.directed_edges() == []

    def test_cancer_dag_skeleton(self, learner_class):
        dag = cancer_dag()
        oracle = DSeparationOracle(dag)
        pdag = learner_class(oracle, max_cond_size=4).learn(None, dag.nodes())
        report = skeleton_f1(dag, pdag)
        assert report.f1 == 1.0


class TestHillClimb:
    def test_learns_strong_dependency_skeleton(self):
        from tests.conftest import strong_binary_net

        dag = random_erdos_renyi_dag(5, expected_parents=1.2, rng=1)
        net, domains = strong_binary_net(dag)
        table = net.sample(20000, rng=3, domains=domains)
        learned = HillClimbLearner("bic", max_parents=3).learn(table)
        truth_skeleton = {frozenset(e) for e in dag.edges()}
        learned_skeleton = {frozenset(e) for e in learned.edges()}
        missing = truth_skeleton - learned_skeleton
        assert len(missing) <= 1

    def test_empty_on_independent_data(self, rng):
        from repro.relation.table import Table

        n = 5000
        table = Table.from_columns(
            {f"X{i}": rng.integers(0, 2, n).tolist() for i in range(4)}
        )
        learned = HillClimbLearner("bic").learn(table)
        assert learned.n_edges() == 0

    def test_aic_denser_than_bic(self, rng):
        from repro.relation.table import Table

        n = 800
        table = Table.from_columns(
            {f"X{i}": rng.integers(0, 3, n).tolist() for i in range(5)}
        )
        aic_edges = HillClimbLearner("aic").learn(table).n_edges()
        bic_edges = HillClimbLearner("bic").learn(table).n_edges()
        assert aic_edges >= bic_edges

    def test_max_parents_respected(self):
        dag = random_erdos_renyi_dag(6, expected_parents=2.5, rng=4)
        net = DiscreteBayesNet.random(dag, categories=2, strength=8.0, rng=5)
        table = net.sample(8000, rng=6)
        learned = HillClimbLearner("aic", max_parents=2).learn(table)
        assert all(len(learned.parents(node)) <= 2 for node in learned.nodes())

    def test_learn_pdag_wraps_dag(self):
        dag = random_erdos_renyi_dag(4, expected_parents=1.0, rng=7)
        net = DiscreteBayesNet.random(dag, categories=2, strength=6.0, rng=8)
        table = net.sample(5000, rng=9)
        learner = HillClimbLearner("bde")
        pdag = learner.learn_pdag(table)
        assert pdag.undirected_edges() == []

    def test_unknown_score_rejected(self):
        with pytest.raises(ValueError, match="unknown score"):
            HillClimbLearner("bogus")


class TestConstraintLearnersWithData:
    def test_fgs_on_sampled_collider(self):
        from repro.causal.dag import CausalDAG
        from tests.conftest import strong_binary_net

        dag = CausalDAG(["A", "B", "C"], [("A", "C"), ("B", "C")])
        net, domains = strong_binary_net(dag)
        table = net.sample(20000, rng=11, domains=domains)
        pdag = FullGrowShrink(ChiSquaredTest()).learn(table)
        assert pdag.parents("C") == {"A", "B"}
