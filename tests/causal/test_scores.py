"""Unit tests for the decomposable network scores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.causal.structure.scores import (
    aic_score,
    bdeu_score,
    bic_score,
    family_log_likelihood,
    get_score_function,
)
from repro.relation.table import Table


@pytest.fixture
def dependent_table(rng) -> Table:
    n = 4000
    a = rng.integers(0, 2, n)
    b = np.where(rng.random(n) < 0.9, a, 1 - a)
    c = rng.integers(0, 2, n)
    return Table.from_columns({"A": a.tolist(), "B": b.tolist(), "C": c.tolist()})


class TestLogLikelihood:
    def test_non_positive(self, dependent_table):
        assert family_log_likelihood(dependent_table, "B", []) <= 0

    def test_adding_informative_parent_improves(self, dependent_table):
        without = family_log_likelihood(dependent_table, "B", [])
        with_parent = family_log_likelihood(dependent_table, "B", ["A"])
        assert with_parent > without

    def test_adding_any_parent_never_hurts(self, dependent_table):
        without = family_log_likelihood(dependent_table, "B", [])
        with_noise = family_log_likelihood(dependent_table, "B", ["C"])
        assert with_noise >= without - 1e-9

    def test_deterministic_family_is_zero(self):
        table = Table.from_columns({"A": [0, 1, 0, 1], "B": [0, 1, 0, 1]})
        assert family_log_likelihood(table, "B", ["A"]) == pytest.approx(0.0)

    def test_relation_to_entropy(self, dependent_table):
        """LL(node | ()) = -n * H_plugin(node)."""
        from repro.infotheory.entropy import plugin_entropy

        counts = dependent_table.joint_counts(("B",))
        expected = -dependent_table.n_rows * plugin_entropy(counts)
        assert family_log_likelihood(dependent_table, "B", []) == pytest.approx(expected)


class TestPenalizedScores:
    def test_bic_penalizes_noise_parent(self, dependent_table):
        assert bic_score(dependent_table, "B", ["C"]) < bic_score(dependent_table, "B", [])

    def test_bic_rewards_informative_parent(self, dependent_table):
        assert bic_score(dependent_table, "B", ["A"]) > bic_score(dependent_table, "B", [])

    def test_aic_penalty_lighter_than_bic(self, dependent_table):
        # Same LL, smaller penalty at this n.
        aic_gap = aic_score(dependent_table, "B", ["A", "C"]) - aic_score(
            dependent_table, "B", ["A"]
        )
        bic_gap = bic_score(dependent_table, "B", ["A", "C"]) - bic_score(
            dependent_table, "B", ["A"]
        )
        assert aic_gap > bic_gap

    def test_bdeu_rewards_informative_parent(self, dependent_table):
        assert bdeu_score(dependent_table, "B", ["A"]) > bdeu_score(
            dependent_table, "B", []
        )

    def test_bdeu_iss_must_be_positive(self, dependent_table):
        with pytest.raises(ValueError, match="positive"):
            bdeu_score(dependent_table, "B", [], equivalent_sample_size=0)

    def test_bdeu_marginal_likelihood_identity(self):
        """For a single binary node with iss=2 (a=1 each), the BDeu score is
        the log Beta-binomial marginal likelihood."""
        from scipy.special import gammaln

        table = Table.from_columns({"A": [0, 0, 0, 1]})
        score = bdeu_score(table, "A", [], equivalent_sample_size=2.0)
        expected = (
            gammaln(2) - gammaln(2 + 4) + (gammaln(1 + 3) - gammaln(1)) + (gammaln(1 + 1) - gammaln(1))
        )
        assert score == pytest.approx(float(expected))


class TestDispatch:
    @pytest.mark.parametrize("name", ["aic", "bic", "bde", "bdeu", "BIC"])
    def test_known_names(self, name):
        assert callable(get_score_function(name))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown score"):
            get_score_function("mdl2")
