"""Tests for the PC-stable structure learner."""

from __future__ import annotations

import pytest

from repro.causal.oracle import DSeparationOracle
from repro.causal.random_dag import random_erdos_renyi_dag
from repro.causal.structure.metrics import parent_recovery_f1, skeleton_f1
from repro.causal.structure.pc import PCStable
from repro.datasets.cancer import cancer_dag
from repro.stats.chi2 import ChiSquaredTest


class TestWithOracle:
    def test_collider_oriented(self, collider_dag):
        pdag = PCStable(DSeparationOracle(collider_dag)).learn(None, collider_dag.nodes())
        assert pdag.parents("C") == {"A", "B"}

    def test_chain_skeleton_undirected(self, chain_dag):
        pdag = PCStable(DSeparationOracle(chain_dag)).learn(None, chain_dag.nodes())
        assert pdag.skeleton() == {frozenset({"A", "B"}), frozenset({"B", "C"})}
        assert pdag.directed_edges() == []

    def test_paper_dag_recovered(self, paper_dag):
        pdag = PCStable(DSeparationOracle(paper_dag)).learn(None, paper_dag.nodes())
        assert parent_recovery_f1(paper_dag, pdag).f1 == 1.0

    def test_cancer_dag_skeleton_exact(self):
        dag = cancer_dag()
        pdag = PCStable(DSeparationOracle(dag), max_cond_size=4).learn(None, dag.nodes())
        assert skeleton_f1(dag, pdag).f1 == 1.0

    def test_random_dags_skeleton(self):
        for seed in range(4):
            dag = random_erdos_renyi_dag(7, expected_parents=1.3, rng=seed)
            pdag = PCStable(DSeparationOracle(dag), max_cond_size=4).learn(
                None, dag.nodes()
            )
            assert skeleton_f1(dag, pdag).f1 == 1.0, seed

    def test_nodes_required_without_table(self, chain_dag):
        with pytest.raises(ValueError, match="nodes"):
            PCStable(DSeparationOracle(chain_dag)).learn(None)


class TestWithData:
    def test_sampled_collider(self):
        from repro.causal.dag import CausalDAG
        from tests.conftest import strong_binary_net

        dag = CausalDAG(["A", "B", "C"], [("A", "C"), ("B", "C")])
        net, domains = strong_binary_net(dag)
        table = net.sample(20000, rng=13, domains=domains)
        pdag = PCStable(ChiSquaredTest()).learn(table)
        assert pdag.parents("C") == {"A", "B"}
