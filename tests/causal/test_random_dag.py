"""Unit tests for random DAG generation."""

from __future__ import annotations

import pytest

from repro.causal.random_dag import random_erdos_renyi_dag


class TestRandomDag:
    def test_node_count_and_names(self):
        dag = random_erdos_renyi_dag(8, rng=0)
        assert dag.n_nodes() == 8
        assert dag.nodes() == [f"X{i}" for i in range(8)]

    def test_acyclic_by_construction(self):
        for seed in range(20):
            dag = random_erdos_renyi_dag(12, expected_parents=3.0, rng=seed)
            order = dag.topological_order()  # raises if cyclic
            assert len(order) == 12

    def test_expected_parents_controls_density(self):
        sparse = sum(
            random_erdos_renyi_dag(16, expected_parents=0.5, rng=s).n_edges()
            for s in range(10)
        )
        dense = sum(
            random_erdos_renyi_dag(16, expected_parents=3.0, rng=s).n_edges()
            for s in range(10)
        )
        assert dense > sparse * 2

    def test_mean_in_degree_near_target(self):
        total_edges = 0
        trials = 30
        for seed in range(trials):
            total_edges += random_erdos_renyi_dag(16, expected_parents=2.0, rng=seed).n_edges()
        mean_parents = total_edges / (trials * 16)
        assert mean_parents == pytest.approx(2.0, rel=0.25)

    def test_seed_reproducible(self):
        a = random_erdos_renyi_dag(10, rng=7)
        b = random_erdos_renyi_dag(10, rng=7)
        assert a == b

    def test_single_node(self):
        dag = random_erdos_renyi_dag(1, rng=0)
        assert dag.n_edges() == 0

    def test_prefix(self):
        dag = random_erdos_renyi_dag(3, rng=0, node_prefix="V")
        assert dag.nodes() == ["V0", "V1", "V2"]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_erdos_renyi_dag(0)
        with pytest.raises(ValueError):
            random_erdos_renyi_dag(5, expected_parents=0)
