"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.causal.dag import CausalDAG
from repro.relation.table import Table


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_table() -> Table:
    """A tiny deterministic table used across relational tests."""
    return Table.from_columns(
        {
            "T": ["a", "a", "b", "b", "a", "b"],
            "Y": [1, 0, 1, 1, 0, 1],
            "Z": ["u", "v", "u", "v", "u", "v"],
        }
    )


@pytest.fixture
def confounded_table(rng: np.random.Generator) -> Table:
    """Z confounds T and Y: T ⊥̸ Y marginally but T ⊥ Y | Z."""
    n = 8000
    z = rng.integers(0, 3, n)
    t = (rng.random(n) < 0.25 + 0.25 * z).astype(int)
    y = (rng.random(n) < 0.15 + 0.3 * z).astype(int)
    return Table.from_columns({"Z": z.tolist(), "T": t.tolist(), "Y": y.tolist()})


@pytest.fixture
def chain_dag() -> CausalDAG:
    """A -> B -> C chain."""
    return CausalDAG(nodes=["A", "B", "C"], edges=[("A", "B"), ("B", "C")])


@pytest.fixture
def collider_dag() -> CausalDAG:
    """A -> C <- B collider."""
    return CausalDAG(nodes=["A", "B", "C"], edges=[("A", "C"), ("B", "C")])


def strong_binary_net(dag: CausalDAG):
    """A binary Bayesian network over ``dag`` with strong, explicit CPTs.

    Random Dirichlet CPTs occasionally produce near-independent edges,
    which makes data-driven discovery tests flaky; this helper guarantees
    every edge carries detectable signal: P(node=1 | parents) ramps from
    0.12 (all parents 0) to 0.82 (all parents 1).
    """
    from repro.causal.bayesnet import DiscreteBayesNet
    from itertools import product

    domains = {node: (0, 1) for node in dag.nodes()}
    conditionals = {}
    for node in dag.nodes():
        parents = sorted(dag.parents(node))
        table = {}
        if not parents:
            table[()] = (0.6, 0.4)
        else:
            for values in product((0, 1), repeat=len(parents)):
                p = 0.12 + 0.70 * (sum(values) / len(parents))
                table[values] = (1.0 - p, p)
        conditionals[node] = table
    net, decoded = DiscreteBayesNet.from_conditionals(dag, domains, conditionals)
    return net, decoded


@pytest.fixture
def paper_dag() -> CausalDAG:
    """The Fig. 2-style DAG used in the discovery tests.

    Z and W are non-adjacent parents of T; Y is a child of T; C is a child
    of T with a second parent D (so D is a spouse of T).
    """
    return CausalDAG(
        nodes=["Z", "W", "T", "Y", "C", "D"],
        edges=[("Z", "T"), ("W", "T"), ("T", "Y"), ("T", "C"), ("D", "C")],
    )
