"""Tracing must never change a single response byte.

The tentpole invariant of the observability tier: telemetry travels in
headers, ``/metrics``, and logs only.  For every request kind, the HTTP
body served with tracing fully on (trace header sent, JSONL log
configured) is byte-identical -- up to the envelope's wall-clock
``elapsed_seconds`` field -- to the body served with tracing disabled,
on both the serial and the ``jobs=4`` parallel engine, cold and warm.
"""

from __future__ import annotations

import json
import re
import threading

import pytest

from repro.datasets import staples_data
from repro.engine import ParallelEngine
from repro.obs.trace import TRACE_HEADER, TRACER
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"

#: The four synchronous request kinds, smallest-work parameterizations.
REQUESTS = (
    ("/query", {"sql": SQL}),
    (
        "/analyze",
        {"sql": SQL, "covariates": ["Distance"], "mediators": [], "seed": 7},
    ),
    ("/discover", {"treatment": "Income", "outcome": "Price", "seed": 7}),
    (
        "/whatif",
        {"treatment": "Income", "outcome": "Price", "covariates": ["Distance"]},
    ),
)

_ELAPSED = re.compile(rb'"elapsed_seconds":[0-9.eE+-]+')


def normalize(body: bytes) -> bytes:
    """Zero the envelope's only wall-clock field; everything else is pinned."""
    return _ELAPSED.sub(b'"elapsed_seconds":0', body)


def _columns() -> dict:
    table = staples_data(n_rows=400, seed=41)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture(autouse=True)
def restore_tracer():
    yield
    TRACER.close()
    TRACER.configure(enabled=True, scope="main")
    TRACER.clear()


def _serve(engine=None):
    service = AnalysisService(engine=engine) if engine is not None else AnalysisService()
    server = make_server(service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
    client.register("bid", columns=_columns())
    return service, server, client


def _collect(client: ServiceClient, traced: bool, tmp_path) -> list[bytes]:
    """Cold + warm bodies for every request kind, tracing on or off."""
    if traced:
        TRACER.configure(enabled=True, log_dir=str(tmp_path / "traces"))
    else:
        TRACER.configure(enabled=False)
    bodies: list[bytes] = []
    for path, params in REQUESTS:
        raw = json.dumps({"dataset": "bid", **params}).encode("utf-8")
        for _round in ("cold", "warm"):
            handle = TRACER.begin() if traced else None
            try:
                status, body = client.request_bytes(path, raw)
            finally:
                TRACER.finish(handle)
            assert status == 200, body
            bodies.append(normalize(body))
    return bodies


def _assert_identical(engine, tmp_path):
    service_on, server_on, client_on = _serve(engine)
    try:
        traced = _collect(client_on, traced=True, tmp_path=tmp_path)
    finally:
        server_on.shutdown()
        server_on.server_close()
        service_on.close()
    engine_off = ParallelEngine(jobs=4) if engine is not None else None
    service_off, server_off, client_off = _serve(engine_off)
    try:
        untraced = _collect(client_off, traced=False, tmp_path=tmp_path)
    finally:
        server_off.shutdown()
        server_off.server_close()
        service_off.close()
    for (path, _params), index in zip(REQUESTS, range(0, len(traced), 2)):
        assert traced[index] == untraced[index], f"cold bytes diverged: {path}"
        assert traced[index + 1] == untraced[index + 1], (
            f"warm bytes diverged: {path}"
        )
    # The traced run really traced: its JSONL log is non-empty.
    logs = list((tmp_path / "traces").glob("trace-*.jsonl"))
    assert logs and any(log.stat().st_size > 0 for log in logs)


class TestByteIdentity:
    def test_serial_engine_all_kinds(self, tmp_path):
        _assert_identical(None, tmp_path)

    def test_parallel_engine_jobs4_all_kinds(self, tmp_path):
        _assert_identical(ParallelEngine(jobs=4), tmp_path)

    def test_trace_header_alone_does_not_leak_into_the_body(self, tmp_path):
        # Same live service, same warm request, with and without the
        # inbound header: bytes must match exactly (no normalization of
        # anything but the timing field).
        service, server, client = _serve()
        try:
            raw = json.dumps({"dataset": "bid", "sql": SQL}).encode("utf-8")
            client.request_bytes("/query", raw)  # prime the cache
            _status, plain = client.request_bytes("/query", raw)
            import urllib.request

            request = urllib.request.Request(
                client.base_url + "/query",
                data=raw,
                headers={
                    "Content-Type": "application/json",
                    TRACE_HEADER: "0011223344556677",
                },
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=120) as response:
                tagged = response.read()
                assert response.headers[TRACE_HEADER] == "0011223344556677"
            assert normalize(tagged) == normalize(plain)
        finally:
            server.shutdown()
            server.server_close()
            service.close()
