"""Regression pins for the ``/stats`` JSON shapes.

The metrics registry became the single source of truth for the counters
these payloads expose; the stats classes are *views* over registry
samples.  These tests pin the exact key sets and value types the JSON
carried before the refactor, so dashboards and scripts keyed on the old
shapes keep working byte-compatibly.
"""

from __future__ import annotations

import threading

import pytest

from repro.datasets import staples_data
from repro.engine.dataplane import PLANE_STATS
from repro.relation.table import KERNEL_COUNTERS
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.shard import ShardRouter, make_router_server
from repro.service.shard.supervisor import ShardBackend

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"

SERVICE_STATS_KEYS = {
    "uptime_seconds",
    "requests",
    "coalesced",
    "v1_requests",
    "engine",
    "jobs",
    "datasets",
    "filter_memo_entries",
    "result_cache",
    "dataset_plane",
    "job_manager",
    "kernel_counters",
}

RESULT_CACHE_KEYS = {
    "max_entries",
    "in_memory",
    "on_disk",
    "disk_dir",
    "memory_hits",
    "disk_hits",
    "misses",
    "evictions",
    "stores",
    "disk_errors",
    "hit_ratio",
}

PLANE_KEYS = {
    "table_publications",
    "table_republications",
    "table_segments",
    "grouped_publications",
    "grouped_republications",
    "grouped_segments",
}

ROUTER_KEYS = {
    "uptime_seconds",
    "shards",
    "live_shards",
    "requests",
    "warm_hits",
    "v1_requests",
    "failovers",
    "warm_keys",
    "datasets",
    "replicas",
    "replica_reads",
    "rereplications",
    "routed_jobs",
    "job_failovers",
    "rejoins",
    "cluster",
}

CLUSTER_KEYS = {
    "enabled",
    "epoch",
    "remote_nodes",
    "joins",
    "join_rejects",
    "heartbeats",
    "gossip_events",
}


def _columns(seed: int = 31) -> dict:
    table = staples_data(n_rows=400, seed=seed)
    return {name: table.column(name) for name in table.columns}


@pytest.fixture
def served():
    service = AnalysisService()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
    client.register("shapes", columns=_columns())
    yield service, client
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


class TestServiceStatsShape:
    def test_top_level_keys_are_pinned(self, served):
        service, client = served
        client.query("shapes", SQL)
        stats = client.stats()
        assert set(stats) == SERVICE_STATS_KEYS

    def test_counter_types_and_movement(self, served):
        service, client = served
        before = client.stats()
        client.query("shapes", SQL)
        client.query("shapes", SQL)  # warm
        after = client.stats()
        assert isinstance(after["requests"], int)
        assert after["requests"] == before["requests"] + 2
        assert isinstance(after["coalesced"], int)
        assert isinstance(after["v1_requests"], int)
        assert after["v1_requests"] >= before["v1_requests"] + 2

    def test_result_cache_shape(self, served):
        service, client = served
        client.query("shapes", SQL)
        cache = client.stats()["result_cache"]
        assert set(cache) == RESULT_CACHE_KEYS
        for key in ("memory_hits", "disk_hits", "misses", "evictions",
                    "stores", "disk_errors"):
            assert isinstance(cache[key], int), key
        assert isinstance(cache["hit_ratio"], float)

    def test_dataset_plane_shape(self, served):
        service, client = served
        plane = client.stats()["dataset_plane"]
        assert set(plane) == PLANE_KEYS
        assert all(isinstance(value, int) for value in plane.values())

    def test_kernel_counters_shape(self, served):
        service, client = served
        client.query("shapes", SQL)
        counters = client.stats()["kernel_counters"]
        assert set(counters) == {"joint_counts_scans", "grouped_passes", "total"}
        assert counters["total"] == (
            counters["joint_counts_scans"] + counters["grouped_passes"]
        )


class TestViewsOverTheRegistry:
    def test_kernel_counters_are_ints_and_move(self):
        table = staples_data(n_rows=200, seed=5)
        before = KERNEL_COUNTERS.joint_counts_scans
        table.joint_counts(("Income", "Price"))
        assert isinstance(KERNEL_COUNTERS.joint_counts_scans, int)
        assert KERNEL_COUNTERS.joint_counts_scans == before + 1
        assert KERNEL_COUNTERS.total() == (
            KERNEL_COUNTERS.joint_counts_scans + KERNEL_COUNTERS.grouped_passes
        )

    def test_plane_stats_fields_are_ints(self):
        snapshot = PLANE_STATS.as_dict()
        assert set(snapshot) == PLANE_KEYS
        assert PLANE_STATS.table_publications == snapshot["table_publications"]

    def test_cache_stats_view_tracks_cache_traffic(self):
        cache = ResultCache(max_entries=2)
        assert cache.get("nope") is None
        cache.put("k1", b"{}")
        assert cache.get("k1") == b"{}"
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.stores == 1
        snapshot = cache.stats.as_dict()
        assert snapshot["hit_ratio"] == 0.5


class TestRouterStatsShape:
    def test_router_stats_keys_are_pinned(self):
        service = AnalysisService()
        server = make_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        backend = ShardBackend(
            name="alpha",
            url="http://127.0.0.1:%d" % server.server_address[1],
        )
        router = ShardRouter([backend])
        router_server = make_router_server(router)
        threading.Thread(target=router_server.serve_forever, daemon=True).start()
        client = ServiceClient(
            "http://127.0.0.1:%d" % router_server.server_address[1]
        )
        try:
            client.register("routershape", columns=_columns(32))
            client.query("routershape", SQL)
            stats = client.stats()
            assert set(stats) == {"router", "shards"}
            assert set(stats["router"]) == ROUTER_KEYS
            assert set(stats["router"]["cluster"]) == CLUSTER_KEYS
            assert set(stats["shards"]) == {"alpha"}
            assert set(stats["shards"]["alpha"]) == SERVICE_STATS_KEYS
        finally:
            router_server.shutdown()
            router_server.server_close()
            router.close()
            server.shutdown()
            server.server_close()
            service.close()
