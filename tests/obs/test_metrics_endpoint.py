"""``GET /metrics`` end to end: service exposition and router aggregation."""

from __future__ import annotations

import threading
import urllib.request

import pytest

from repro.datasets import staples_data
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.shard import ShardRouter, make_router_server
from repro.service.shard.supervisor import ShardBackend

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"

#: One family per instrumented subsystem: the scrape covers them all.
SERVICE_FAMILIES = (
    "repro_service_requests_total",
    "repro_request_seconds_bucket",
    "repro_cache_memory_hits_total",
    "repro_jobs_submitted_total",
    "repro_kernel_joint_counts_scans_total",
    "repro_plane_table_publications_total",
)

ROUTER_FAMILIES = (
    "repro_router_requests_total",
    "repro_router_warm_hits_total",
    "repro_router_failovers_total",
    "repro_router_live_shards",
)


def _columns(seed: int = 51) -> dict:
    table = staples_data(n_rows=400, seed=seed)
    return {name: table.column(name) for name in table.columns}


def _scrape(base_url: str) -> tuple[str, str]:
    """(content-type, exposition text) of one /metrics GET."""
    with urllib.request.urlopen(base_url + "/metrics", timeout=30) as response:
        assert response.status == 200
        return response.headers["Content-Type"], response.read().decode("utf-8")


@pytest.fixture
def served():
    service = AnalysisService()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
    client.register("metricsds", columns=_columns())
    yield service, client
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


class TestServiceMetrics:
    def test_content_type_and_families(self, served):
        service, client = served
        client.query("metricsds", SQL)
        client.submit_and_wait({"kind": "query", "dataset": "metricsds", "sql": SQL})
        content_type, text = _scrape(client.base_url)
        assert content_type == PROMETHEUS_CONTENT_TYPE
        for family in SERVICE_FAMILIES:
            assert family in text, f"missing family {family}"

    def test_counters_reflect_served_traffic(self, served):
        service, client = served
        client.query("metricsds", SQL)
        client.query("metricsds", SQL)
        _content_type, text = _scrape(client.base_url)
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if line and not line.startswith("#") and "{" not in line
        )
        assert float(lines["repro_service_requests_total"]) >= 2
        assert float(lines["repro_cache_memory_hits_total"]) >= 1
        assert 'repro_request_seconds_count{kind="query"} 2' in text

    def test_every_line_is_well_formed(self, served):
        service, client = served
        client.query("metricsds", SQL)
        _content_type, text = _scrape(client.base_url)
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            _name, value = line.rsplit(" ", 1)
            float(value.replace("+Inf", "inf"))


class TestRouterMetrics:
    def test_aggregated_scrape_tags_shards(self):
        services, servers, backends = [], [], []
        for name in ("alpha", "beta"):
            service = AnalysisService()
            server = make_server(service)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            services.append(service)
            servers.append(server)
            backends.append(
                ShardBackend(
                    name=name,
                    url="http://127.0.0.1:%d" % server.server_address[1],
                )
            )
        router = ShardRouter(backends)
        router_server = make_router_server(router)
        threading.Thread(target=router_server.serve_forever, daemon=True).start()
        client = ServiceClient(
            "http://127.0.0.1:%d" % router_server.server_address[1]
        )
        try:
            client.register("routermetrics", columns=_columns(52))
            client.query("routermetrics", SQL)
            content_type, text = _scrape(client.base_url)
            assert content_type == PROMETHEUS_CONTENT_TYPE
            for family in ROUTER_FAMILIES:
                assert family in text, f"missing family {family}"
            # Shard samples arrive tagged; one HELP/TYPE pair per family.
            assert 'repro_service_requests_total{shard="alpha"}' in text
            assert 'repro_service_requests_total{shard="beta"}' in text
            assert text.count("# TYPE repro_service_requests_total counter") == 1
        finally:
            router_server.shutdown()
            router_server.server_close()
            router.close()
            for server in servers:
                server.shutdown()
                server.server_close()
            for service in services:
                service.close()
