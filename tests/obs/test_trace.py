"""Tracer unit tests plus cross-process-style propagation tests.

Propagation is exercised over real HTTP hops (service servers and a
shard router with in-process backends): every hop runs in its own
handler thread, so the ``X-Repro-Trace`` header is genuinely the only
channel the trace id can travel through.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.datasets import staples_data
from repro.engine.parallel import ParallelEngine
from repro.obs.trace import (
    MAX_SPANS_PER_TRACE,
    TRACE_HEADER,
    TRACER,
    Tracer,
    new_trace_id,
)
from repro.service.client import ServiceClient
from repro.service.core import AnalysisService
from repro.service.http import make_server
from repro.service.shard import ShardRouter, make_router_server
from repro.service.shard.supervisor import ShardBackend

SQL = "SELECT Income, avg(Price) FROM t GROUP BY Income"


def _square(task: int) -> int:
    return task * task


@pytest.fixture(autouse=True)
def clean_tracer():
    """Isolate each test from the process-global tracer's state."""
    TRACER.clear()
    yield
    TRACER.close()
    TRACER.configure(enabled=True, scope="main")
    TRACER.clear()


def _columns(seed: int = 21, n_rows: int = 400) -> dict:
    table = staples_data(n_rows=n_rows, seed=seed)
    return {name: table.column(name) for name in table.columns}


class TestTracerUnit:
    def test_begin_finish_records_on_ring(self):
        tracer = Tracer()
        handle = tracer.begin()
        with tracer.span("phase.one", detail="x"):
            pass
        tracer.finish(handle)
        (record,) = tracer.recent()
        assert record["trace_id"] == handle[0].trace_id
        assert [span["name"] for span in record["spans"]] == ["phase.one"]
        assert record["spans"][0]["attrs"] == {"detail": "x"}

    def test_begin_continues_an_inbound_id(self):
        tracer = Tracer()
        handle = tracer.begin("cafe0123cafe0123")
        assert tracer.current_id() == "cafe0123cafe0123"
        tracer.finish(handle)
        assert tracer.current_id() is None

    def test_ring_is_bounded(self):
        tracer = Tracer(ring_size=8)
        for _ in range(20):
            tracer.finish(tracer.begin())
        assert len(tracer.recent()) == 8

    def test_span_cap_counts_overflow(self):
        tracer = Tracer()
        handle = tracer.begin()
        for index in range(MAX_SPANS_PER_TRACE + 8):
            tracer.record_span("tiny", 0.0, index=index)
        tracer.finish(handle)
        (record,) = tracer.recent()
        assert len(record["spans"]) == MAX_SPANS_PER_TRACE
        assert record["spans_dropped"] == 8

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer()
        tracer.configure(enabled=False)
        assert tracer.begin() is None
        span = tracer.span("ignored")
        with span:
            span.set(anything="goes")
        tracer.finish(None)
        assert tracer.recent() == []

    def test_span_without_active_trace_is_noop(self):
        tracer = Tracer()
        with tracer.span("orphan"):
            pass
        assert tracer.recent() == []

    def test_new_trace_ids_are_16_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 16
        int(trace_id, 16)

    def test_jsonl_log_written_per_scope_and_pid(self, tmp_path):
        tracer = Tracer()
        tracer.configure(log_dir=str(tmp_path), scope="unittest")
        handle = tracer.begin()
        with tracer.span("only.phase"):
            pass
        tracer.finish(handle)
        tracer.close()
        (path,) = tmp_path.glob("trace-unittest-*.jsonl")
        record = json.loads(path.read_text().strip())
        assert record["scope"] == "unittest"
        assert record["trace_id"] == handle[0].trace_id
        assert record["spans"][0]["name"] == "only.phase"


class TestServicePropagation:
    @pytest.fixture
    def served(self):
        service = AnalysisService()
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
        client.register("tracing", columns=_columns())
        TRACER.clear()
        yield client
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)

    def test_response_echoes_the_trace_header(self, served):
        import urllib.request

        request = urllib.request.Request(
            served.base_url + "/health",
            headers={TRACE_HEADER: "feedbead12345678"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers[TRACE_HEADER] == "feedbead12345678"

    def test_request_records_dispatch_and_execute_spans(self, served):
        served.query("tracing", SQL)
        records = [
            record
            for record in TRACER.recent()
            if any(s["name"] == "service.execute" for s in record["spans"])
        ]
        assert records, "no trace recorded the query execution"
        spans = {span["name"] for span in records[-1]["spans"]}
        assert "http.dispatch" in spans
        execute = next(
            span
            for span in records[-1]["spans"]
            if span["name"] == "service.execute"
        )
        assert execute["attrs"]["kind"] == "query"
        assert execute["attrs"]["cached"] is False
        assert execute["attrs"]["kernel_passes"] >= 0

    def test_client_injects_the_active_id(self, served):
        handle = TRACER.begin("0123456789abcdef")
        try:
            served.query("tracing", SQL)
        finally:
            TRACER.finish(handle)
        ids = {record["trace_id"] for record in TRACER.recent()}
        assert "0123456789abcdef" in ids


class TestRouterPropagation:
    @pytest.fixture
    def routed(self):
        """A router over two in-process backend services (HTTP hops only)."""
        services, servers, threads = [], [], []
        backends = []
        for name in ("alpha", "beta"):
            service = AnalysisService()
            server = make_server(service)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            services.append(service)
            servers.append(server)
            threads.append(thread)
            backends.append(
                ShardBackend(
                    name=name,
                    url="http://127.0.0.1:%d" % server.server_address[1],
                )
            )
        router = ShardRouter(backends)
        router_server = make_router_server(router)
        threading.Thread(target=router_server.serve_forever, daemon=True).start()
        client = ServiceClient(
            "http://127.0.0.1:%d" % router_server.server_address[1]
        )
        client.register("routed", columns=_columns(22))
        TRACER.clear()
        yield client
        router_server.shutdown()
        router_server.server_close()
        router.close()
        for server in servers:
            server.shutdown()
            server.server_close()
        for service in services:
            service.close()
        for thread in threads:
            thread.join(timeout=5)

    def test_one_id_spans_router_and_shard(self, routed):
        import urllib.request

        trace_id = "a1b2c3d4e5f60718"
        body = json.dumps({"dataset": "routed", "sql": SQL}).encode("utf-8")
        request = urllib.request.Request(
            routed.base_url + "/query",
            data=body,
            headers={"Content-Type": "application/json", TRACE_HEADER: trace_id},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            assert response.status == 200
            assert response.headers[TRACE_HEADER] == trace_id

        def names_so_far() -> set:
            return {
                span["name"]
                for record in TRACER.recent()
                if record["trace_id"] == trace_id
                for span in record["spans"]
            }

        # Each hop finishes its trace just after writing its response
        # bytes, so the ring may trail the client by a moment -- for the
        # router record as well as the shard record.
        expected = {"router.route", "router.forward", "service.execute"}
        deadline = time.monotonic() + 10.0
        while not expected <= names_so_far() and time.monotonic() < deadline:
            time.sleep(0.02)
        matching = [
            record
            for record in TRACER.recent()
            if record["trace_id"] == trace_id
        ]
        names = names_so_far()
        # The router hop recorded its routing decision and forward, the
        # shard hop its execution -- all under the caller's id.
        assert "router.route" in names
        assert "router.forward" in names
        assert "service.execute" in names
        route = next(
            span
            for record in matching
            for span in record["spans"]
            if span["name"] == "router.route"
        )
        assert route["attrs"]["policy"] in (
            "warm", "warm_balanced", "placement", "fallback"
        )


class TestEngineWorkerPropagation:
    def test_worker_batches_rerecorded_into_the_trace(self):
        with ParallelEngine(jobs=2, min_tasks=2) as engine:
            handle = TRACER.begin()
            try:
                results = engine.map(_square, list(range(16)), chunk_size=4)
            finally:
                trace = handle[0]
                TRACER.finish(handle)
        assert results == [index * index for index in range(16)]
        names = [span.name for span in trace.spans]
        assert "engine.map" in names
        batches = [span for span in trace.spans if span.name == "engine.worker_batch"]
        assert len(batches) == 4
        assert sum(span.attrs["tasks"] for span in batches) == 16
        assert all(span.attrs["worker_pid"] > 0 for span in batches)

    def test_untraced_map_is_identical(self):
        with ParallelEngine(jobs=2, min_tasks=2) as engine:
            assert engine.map(_square, list(range(16)), chunk_size=4) == [
                index * index for index in range(16)
            ]
