"""Unit tests for the metrics registry and Prometheus text exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    escape_label_value,
    format_value,
    merge_expositions,
    render_many,
)


class TestExpositionFormat:
    def test_counter_help_type_and_zero_sample(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "A demo counter.")
        text = registry.render()
        assert "# HELP demo_total A demo counter.\n" in text
        assert "# TYPE demo_total counter\n" in text
        assert "\ndemo_total 0\n" in text

    def test_counter_increments_render_as_integers(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo_total")
        counter.inc()
        counter.inc(2)
        assert "\ndemo_total 3\n" in registry.render()

    def test_labeled_samples_one_line_each(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labels=("kind",))
        family.inc(kind="query")
        family.inc(kind="analyze")
        family.inc(kind="query")
        text = registry.render()
        assert 'requests_total{kind="query"} 2' in text
        assert 'requests_total{kind="analyze"} 1' in text

    def test_label_value_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        registry = MetricsRegistry()
        registry.counter("odd_total", labels=("path",)).inc(path='p"q\n')
        assert 'odd_total{path="p\\"q\\n"} 1' in registry.render()

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 10.0):
            histogram.observe(value)
        text = registry.render()
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 3' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert "latency_seconds_sum 11.05" in text
        assert "latency_seconds_count 4" in text

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(0.25) == "0.25"

    def test_gauge_callback_read_at_render_time(self):
        registry = MetricsRegistry()
        state = {"size": 1}
        registry.gauge("depth", callback=lambda: state["size"])
        assert "\ndepth 1\n" in registry.render()
        state["size"] = 7
        assert "\ndepth 7\n" in registry.render()


class TestRegistrySemantics:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("twice_total", "help")
        second = registry.counter("twice_total")
        assert first is second

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("shape_total")
        with pytest.raises(ValueError):
            registry.gauge("shape_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("lbl_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("lbl_total", labels=("b",))

    def test_wrong_label_names_on_use_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("use_total", labels=("kind",))
        with pytest.raises(ValueError):
            family.inc(flavor="x")

    def test_latest_callback_wins_on_reregistration(self):
        # A rebuilt owner (e.g. a job manager constructed twice against
        # one service) must re-bind the family to its live state.
        registry = MetricsRegistry()
        registry.counter("owner_total", callback=lambda: 1.0)
        family = registry.counter("owner_total", callback=lambda: 2.0)
        assert family.value() == 2.0

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("race_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000

    def test_render_many_concatenates(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total").inc()
        second.counter("b_total").inc()
        text = render_many([first, second])
        assert "a_total 1" in text and "b_total 1" in text


class TestMergeExpositions:
    def test_shard_label_injected_and_meta_deduplicated(self):
        shard_a = MetricsRegistry()
        shard_a.counter("req_total", "Requests.").inc(3)
        shard_b = MetricsRegistry()
        shard_b.counter("req_total", "Requests.").inc(5)
        merged = merge_expositions(
            [("alpha", shard_a.render()), ("beta", shard_b.render())]
        )
        assert merged.count("# HELP req_total") == 1
        assert merged.count("# TYPE req_total") == 1
        assert 'req_total{shard="alpha"} 3' in merged
        assert 'req_total{shard="beta"} 5' in merged

    def test_none_part_passes_untagged(self):
        own = MetricsRegistry()
        own.counter("router_total").inc()
        merged = merge_expositions([(None, own.render())])
        assert "\nrouter_total 1\n" in merged
        assert "shard=" not in merged

    def test_existing_labels_are_preserved(self):
        shard = MetricsRegistry()
        shard.counter("kinds_total", labels=("kind",)).inc(kind="query")
        merged = merge_expositions([("alpha", shard.render())])
        assert 'kinds_total{shard="alpha",kind="query"} 1' in merged

    def test_merged_text_is_reparseable(self):
        # The merged output must itself be valid exposition text: every
        # non-comment line is "<name>{...} <value>" or "<name> <value>".
        shard = MetricsRegistry()
        shard.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        merged = merge_expositions([("alpha", shard.render())])
        for line in merged.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value.replace("+Inf", "inf"))
