"""Tests for the dataset generators: structure and calibrated effects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    BERKELEY_ADMISSIONS,
    adult_data,
    berkeley_data,
    cancer_dag,
    cancer_data,
    flight_data,
    random_dataset,
    staples_data,
)
from repro.relation.groupby import group_by_average
from repro.relation.predicates import In


class TestFlightData:
    @pytest.fixture(scope="class")
    def table(self):
        return flight_data(n_rows=30000, seed=7)

    def test_schema(self, table):
        expected = {
            "Airport", "Carrier", "Year", "Quarter", "Month", "Day",
            "DayOfWeek", "Dest", "DepTime", "Delayed", "AirportWAC",
            "CarrierName", "FlightID", "FlightNum", "TailNum",
        }
        assert set(table.columns) == expected

    def test_simpson_reversal_calibrated(self, table):
        """AA beats UA overall on the 4 paper airports but loses at each."""
        where = In("Carrier", ["AA", "UA"]) & In(
            "Airport", ["COS", "MFE", "MTJ", "ROC"]
        )
        overall = group_by_average(table, ["Carrier"], ["Delayed"], where=where)
        assert overall.average(("AA",)) < overall.average(("UA",))
        per_airport = group_by_average(
            table, ["Airport", "Carrier"], ["Delayed"], where=where
        )
        for airport in ("COS", "MFE", "MTJ", "ROC"):
            assert per_airport.average((airport, "AA")) > per_airport.average(
                (airport, "UA")
            ), airport

    def test_fd_attributes_are_bijections(self, table):
        assert table.n_groups(["Airport", "AirportWAC"]) == table.n_groups(["Airport"])
        assert table.n_groups(["Carrier", "CarrierName"]) == table.n_groups(["Carrier"])

    def test_key_attribute_unique(self, table):
        assert table.n_groups(["FlightID"]) == table.n_rows

    def test_quarter_is_fd_of_month(self, table):
        assert table.n_groups(["Month", "Quarter"]) == 12

    def test_no_keys_option(self):
        table = flight_data(n_rows=100, seed=0, include_keys=False)
        assert "FlightID" not in table.columns

    def test_padding_columns(self):
        table = flight_data(n_rows=100, seed=0, n_padding_columns=3)
        assert "Pad02" in table.columns

    def test_seed_reproducible(self):
        a = flight_data(n_rows=500, seed=3)
        b = flight_data(n_rows=500, seed=3)
        assert a.rows() == b.rows()


class TestBerkeleyData:
    def test_row_count_matches_published_table(self):
        table = berkeley_data()
        expected = sum(a + r for a, r in BERKELEY_ADMISSIONS.values())
        assert table.n_rows == expected

    def test_aggregate_rates_match_bickel(self):
        table = berkeley_data()
        result = group_by_average(table, ["Gender"], ["Accepted"])
        assert result.average(("Male",)) == pytest.approx(0.445, abs=0.005)
        assert result.average(("Female",)) == pytest.approx(0.304, abs=0.005)

    def test_per_department_counts_exact(self):
        table = berkeley_data()
        counts = table.value_counts(["Department", "Gender", "Accepted"])
        assert counts[("A", "Male", 1)] == 512
        assert counts[("F", "Female", 0)] == 317

    def test_department_a_reversal(self):
        """In department A women are admitted at a higher rate."""
        table = berkeley_data()
        result = group_by_average(table, ["Department", "Gender"], ["Accepted"])
        assert result.average(("A", "Female")) > result.average(("A", "Male"))

    def test_deterministic(self):
        assert berkeley_data().rows() == berkeley_data().rows()


class TestStaplesData:
    @pytest.fixture(scope="class")
    def table(self):
        return staples_data(n_rows=60000, seed=4)

    def test_low_income_sees_higher_prices(self, table):
        result = group_by_average(table, ["Income"], ["Price"])
        assert result.average((0,)) > result.average((1,))

    def test_no_direct_effect_within_distance(self, table):
        result = group_by_average(table, ["Distance", "Income"], ["Price"])
        for distance in ("near", "far"):
            gap = abs(
                result.average((distance, 0)) - result.average((distance, 1))
            )
            assert gap < 0.01, distance

    def test_distance_depends_on_income(self, table):
        result = group_by_average(
            table.with_column(
                "Far", [1 if d == "far" else 0 for d in table.column("Distance")]
            ),
            ["Income"],
            ["Far"],
        )
        assert result.average((0,)) > result.average((1,)) + 0.15


class TestCancerData:
    def test_dag_matches_paper_figure(self):
        dag = cancer_dag()
        assert dag.parents("Car_Accident") == {"Attention_Disorder", "Fatigue"}
        assert dag.parents("Lung_Cancer") == {"Genetics", "Smoking"}
        assert dag.markov_boundary("Born_an_Even_Day") == set()

    def test_no_direct_cancer_accident_edge(self):
        assert not cancer_dag().has_edge("Lung_Cancer", "Car_Accident")

    def test_accident_rates_match_paper(self):
        table = cancer_data(20000, seed=3)
        result = group_by_average(table, ["Lung_Cancer"], ["Car_Accident"])
        assert result.average((0,)) == pytest.approx(0.62, abs=0.04)
        assert result.average((1,)) == pytest.approx(0.78, abs=0.04)

    def test_binary_domains(self):
        table = cancer_data(200, seed=1)
        for column in table.columns:
            assert set(table.column(column)) <= {0, 1}

    def test_default_size_matches_paper(self):
        assert cancer_data(seed=0).n_rows == 2000


class TestAdultData:
    @pytest.fixture(scope="class")
    def table(self):
        return adult_data(n_rows=30000, seed=5)

    def test_income_disparity_shape(self, table):
        result = group_by_average(table, ["Gender"], ["Income"])
        assert result.average(("Female",)) < 0.20
        assert result.average(("Male",)) > 0.28

    def test_married_men_dominate(self, table):
        counts = table.value_counts(["Gender", "MaritalStatus"])
        married_male = counts.get(("Male", "Married"), 0)
        married_female = counts.get(("Female", "Married"), 0)
        assert married_male > 2 * married_female

    def test_marriage_income_association(self, table):
        result = group_by_average(table, ["MaritalStatus"], ["Income"])
        assert result.average(("Married",)) > result.average(("Single",)) + 0.15

    def test_direct_gap_small_within_strata(self, table):
        """Within (marital, education, hours) strata the gender gap is tiny."""
        result = group_by_average(
            table, ["MaritalStatus", "Education", "HoursPerWeek", "Gender"], ["Income"]
        )
        gaps = []
        for marital in ("Married", "Single"):
            for education in ("HSgrad", "Bachelors"):
                try:
                    male = result.average((marital, education, "full", "Male"))
                    female = result.average((marital, education, "full", "Female"))
                except KeyError:
                    continue
                gaps.append(male - female)
        assert gaps
        assert abs(np.mean(gaps)) < 0.05


class TestRandomDataset:
    def test_bundle_consistency(self):
        dataset = random_dataset(n_nodes=6, n_rows=1000, seed=9)
        assert dataset.table.n_rows == 1000
        assert set(dataset.table.columns) == set(dataset.dag.nodes())
        assert dataset.network.dag == dataset.dag

    def test_category_range(self):
        dataset = random_dataset(n_nodes=5, n_rows=500, categories=(2, 6), seed=10)
        for node in dataset.nodes:
            assert 2 <= dataset.network.cardinality(node) <= 6

    def test_invalid_category_range(self):
        with pytest.raises(ValueError, match="invalid category range"):
            random_dataset(categories=(5, 2), seed=0)

    def test_seed_reproducible(self):
        a = random_dataset(n_nodes=5, n_rows=300, seed=11)
        b = random_dataset(n_nodes=5, n_rows=300, seed=11)
        assert a.dag == b.dag
        assert a.table.rows() == b.table.rows()

    def test_dependencies_detectable(self):
        """Sampled data must reflect the DAG's edges statistically."""
        from repro.stats.chi2 import ChiSquaredTest

        # Sparse DAG: in dense graphs the many random parent effects can
        # average out and mask individual marginal dependencies.
        dataset = random_dataset(
            n_nodes=6, n_rows=20000, expected_parents=1.0, strength=8.0, seed=12
        )
        test = ChiSquaredTest()
        detected = 0
        edges = dataset.dag.edges()
        for source, target in edges:
            if test.test(dataset.table, source, target).dependent(0.01):
                detected += 1
        assert edges, "random DAG should have at least one edge at this density"
        # Random CPTs occasionally produce weak edges; most must show up.
        assert detected >= len(edges) * 0.5
