"""Unit tests for the SQL tokenizer."""

from __future__ import annotations

import pytest

from repro.sql.errors import SqlSyntaxError
from repro.sql.lexer import TokenKind, tokenize


def kinds(text: str) -> list[TokenKind]:
    return [token.kind for token in tokenize(text)]


def texts(text: str) -> list[str]:
    return [token.text for token in tokenize(text)][:-1]  # drop END


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert texts("select FROM Where") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        tokens = tokenize("Carrier DepDelay_15")
        assert tokens[0].text == "Carrier"
        assert tokens[1].text == "DepDelay_15"
        assert tokens[0].kind is TokenKind.IDENTIFIER

    def test_string_literal(self):
        token = tokenize("'AA'")[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "AA"

    def test_string_with_escaped_quote(self):
        token = tokenize("'O''Hare'")[0]
        assert token.text == "O'Hare"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'abc")

    def test_numbers(self):
        tokens = tokenize("42 -7 3.14")
        assert [t.text for t in tokens[:3]] == ["42", "-7", "3.14"]
        assert all(t.kind is TokenKind.NUMBER for t in tokens[:3])

    def test_operators(self):
        assert texts("= != <> < <= > >=") == ["=", "!=", "<>", "<", "<=", ">", ">="]

    def test_punctuation(self):
        assert kinds("( ) , *")[:4] == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.COMMA,
            TokenKind.STAR,
        ]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.END

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT @")

    def test_positions_recorded(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7
