"""Unit tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.relation.predicates import And, Eq, Gt, In, Not, NotIn, Or, TRUE
from repro.relation.table import Table
from repro.sql.errors import SqlSyntaxError
from repro.sql.parser import parse_select

PAPER_QUERY = (
    "SELECT Carrier, avg(Delayed) FROM FlightData "
    "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
    "GROUP BY Carrier"
)


class TestParseSelect:
    def test_paper_listing_one(self):
        statement = parse_select(PAPER_QUERY)
        assert statement.table_name == "FlightData"
        assert statement.select_columns == ("Carrier",)
        assert statement.outcome_columns() == ("Delayed",)
        assert statement.group_by == ("Carrier",)
        assert isinstance(statement.where, And)

    def test_multiple_aggregates(self):
        statement = parse_select("SELECT T, avg(Y1), avg(Y2) FROM D GROUP BY T")
        assert statement.outcome_columns() == ("Y1", "Y2")

    def test_no_where_defaults_true(self):
        statement = parse_select("SELECT avg(Y) FROM D GROUP BY T")
        assert statement.where is TRUE

    def test_equality_condition(self):
        statement = parse_select("SELECT avg(Y) FROM D WHERE A = 'x' GROUP BY T")
        assert statement.where == Eq("A", "x")

    def test_numeric_literals(self):
        statement = parse_select("SELECT avg(Y) FROM D WHERE Year = 2008 GROUP BY T")
        assert statement.where == Eq("Year", 2008)

    def test_comparison(self):
        statement = parse_select("SELECT avg(Y) FROM D WHERE Delay > 15 GROUP BY T")
        assert statement.where == Gt("Delay", 15.0)

    def test_not_in(self):
        statement = parse_select(
            "SELECT avg(Y) FROM D WHERE A NOT IN (1, 2) GROUP BY T"
        )
        assert statement.where == NotIn("A", (1, 2))

    def test_or_and_precedence(self):
        statement = parse_select(
            "SELECT avg(Y) FROM D WHERE A = 1 OR B = 2 AND C = 3 GROUP BY T"
        )
        # AND binds tighter than OR.
        assert isinstance(statement.where, Or)
        left, right = statement.where.operands
        assert left == Eq("A", 1)
        assert isinstance(right, And)

    def test_parentheses_override_precedence(self):
        statement = parse_select(
            "SELECT avg(Y) FROM D WHERE (A = 1 OR B = 2) AND C = 3 GROUP BY T"
        )
        assert isinstance(statement.where, And)

    def test_not(self):
        statement = parse_select("SELECT avg(Y) FROM D WHERE NOT A = 1 GROUP BY T")
        assert statement.where == Not(Eq("A", 1))

    def test_multi_group_by(self):
        statement = parse_select("SELECT avg(Y) FROM D GROUP BY T, X, W")
        assert statement.group_by == ("T", "X", "W")

    def test_parsed_where_executes(self):
        table = Table.from_columns({"A": [1, 2, 3], "Y": [0, 1, 1]})
        statement = parse_select("SELECT avg(Y) FROM t WHERE A IN (2, 3) GROUP BY Y")
        assert statement.where.mask(table).tolist() == [False, True, True]

    def test_repr_round_trip_parses(self):
        statement = parse_select(PAPER_QUERY)
        assert parse_select(repr(statement)) == statement


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql, message",
        [
            ("avg(Y) FROM D", "expected SELECT"),
            ("SELECT FROM D", "expected column"),
            ("SELECT avg(Y FROM D", "expected '\\)'"),
            ("SELECT avg(Y) D", "expected FROM"),
            ("SELECT avg(Y) FROM D WHERE GROUP BY T", "column name"),
            ("SELECT avg(Y) FROM D GROUP T", "expected BY"),
            ("SELECT avg(Y) FROM D GROUP BY T extra", "trailing input"),
            ("SELECT avg(Y) FROM D WHERE A IN 1 GROUP BY T", "expected '\\('"),
            ("SELECT avg(Y) FROM D WHERE A = GROUP BY T", "expected literal"),
        ],
    )
    def test_syntax_errors(self, sql, message):
        with pytest.raises(SqlSyntaxError, match=message):
            parse_select(sql)
