"""Property-based tests (hypothesis) for the core invariants."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.causal.dag import CausalDAG
from repro.causal.random_dag import random_erdos_renyi_dag
from repro.infotheory.cache import EntropyEngine
from repro.infotheory.contributions import contribution_table
from repro.infotheory.entropy import miller_madow_entropy, plugin_entropy
from repro.relation.table import Table
from repro.stats.patefield import sample_contingency_tables
from repro.utils.borda import borda_aggregate

counts_strategy = st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=12)

small_categorical_columns = st.lists(
    st.integers(min_value=0, max_value=3), min_size=2, max_size=120
)


class TestEntropyProperties:
    @given(counts_strategy)
    def test_plugin_entropy_bounds(self, counts):
        """0 <= H <= log(#cells) for any count vector."""
        h = plugin_entropy(counts)
        observed = sum(1 for c in counts if c > 0)
        assert h >= -1e-9
        if observed > 0:
            assert h <= math.log(observed) + 1e-9

    @given(counts_strategy)
    def test_miller_madow_dominates_plugin(self, counts):
        assert miller_madow_entropy(counts) >= plugin_entropy(counts) - 1e-12

    @given(counts_strategy)
    def test_entropy_invariant_to_zeros_and_order(self, counts):
        h = plugin_entropy(counts)
        padded = list(counts) + [0, 0, 0]
        np.random.default_rng(0).shuffle(padded)
        assert math.isclose(plugin_entropy(padded), h, rel_tol=1e-9, abs_tol=1e-12)

    @given(counts_strategy, st.integers(min_value=2, max_value=5))
    def test_scaling_counts_preserves_plugin_entropy(self, counts, factor):
        scaled = [c * factor for c in counts]
        assert math.isclose(
            plugin_entropy(scaled), plugin_entropy(counts), rel_tol=1e-9, abs_tol=1e-12
        )


class TestMutualInformationProperties:
    @given(small_categorical_columns, small_categorical_columns)
    @settings(max_examples=40)
    def test_plugin_mi_non_negative_and_symmetric(self, xs, ys):
        n = min(len(xs), len(ys))
        table = Table.from_columns({"X": xs[:n], "Y": ys[:n]})
        engine = EntropyEngine(table, estimator="plugin", caching=False)
        mi_xy = engine.mutual_information(("X",), ("Y",))
        mi_yx = engine.mutual_information(("Y",), ("X",))
        assert mi_xy >= -1e-9
        assert math.isclose(mi_xy, mi_yx, rel_tol=1e-9, abs_tol=1e-12)

    @given(small_categorical_columns, small_categorical_columns)
    @settings(max_examples=40)
    def test_mi_bounded_by_marginal_entropies(self, xs, ys):
        n = min(len(xs), len(ys))
        table = Table.from_columns({"X": xs[:n], "Y": ys[:n]})
        engine = EntropyEngine(table, estimator="plugin", caching=False)
        mi = engine.mutual_information(("X",), ("Y",))
        assert mi <= engine.entropy(("X",)) + 1e-9
        assert mi <= engine.entropy(("Y",)) + 1e-9

    @given(small_categorical_columns, small_categorical_columns)
    @settings(max_examples=40)
    def test_contributions_decompose_mi(self, xs, ys):
        n = min(len(xs), len(ys))
        table = Table.from_columns({"X": xs[:n], "Y": ys[:n]})
        engine = EntropyEngine(table, estimator="plugin", caching=False)
        total = sum(contribution_table(table, "X", "Y").values())
        assert abs(total - engine.mutual_information(("X",), ("Y",))) < 1e-9


class TestPatefieldProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40)
    def test_marginals_always_exact(self, rows, n_cols, seed):
        total = sum(rows)
        rng = np.random.default_rng(seed)
        # Build a column margin with the same total.
        cols = [0] * n_cols
        for _ in range(total):
            cols[int(rng.integers(0, n_cols))] += 1
        tables = sample_contingency_tables(rows, cols, 5, seed)
        assert (tables >= 0).all()
        np.testing.assert_array_equal(tables.sum(axis=2), np.tile(rows, (5, 1)))
        np.testing.assert_array_equal(tables.sum(axis=1), np.tile(cols, (5, 1)))


class TestDagProperties:
    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_markov_boundary_symmetry(self, n_nodes, seed):
        """X in MB(Y) iff Y in MB(X) (boundaries are symmetric)."""
        dag = random_erdos_renyi_dag(n_nodes, expected_parents=1.5, rng=seed)
        for x in dag.nodes():
            for y in dag.markov_boundary(x):
                assert x in dag.markov_boundary(y)

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_d_separation_given_boundary(self, n_nodes, seed):
        dag = random_erdos_renyi_dag(n_nodes, expected_parents=1.2, rng=seed)
        nodes = dag.nodes()
        for node in nodes:
            boundary = dag.markov_boundary(node)
            for other in nodes:
                if other == node or other in boundary:
                    continue
                assert dag.d_separated(node, other, sorted(boundary))

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=500))
    @settings(max_examples=30)
    def test_parents_satisfy_backdoor_for_any_non_descendant(self, n_nodes, seed):
        """Prop. 2.3: PA_T satisfies the back-door criterion for any outcome."""
        dag = random_erdos_renyi_dag(n_nodes, expected_parents=1.5, rng=seed)
        nodes = dag.nodes()
        treatment = nodes[0]
        parents = sorted(dag.parents(treatment))
        for outcome in dag.descendants(treatment):
            assert dag.satisfies_backdoor(treatment, outcome, parents)


class TestBordaProperties:
    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8, unique=True))
    def test_unanimous_rankings_preserved(self, items):
        ranking = list(items)
        assert borda_aggregate([ranking, ranking, ranking]) == ranking

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=6, unique=True),
        st.integers(min_value=0, max_value=100),
    )
    def test_aggregate_is_permutation_of_items(self, items, seed):
        rng = np.random.default_rng(seed)
        rankings = []
        for _ in range(3):
            shuffled = list(items)
            rng.shuffle(shuffled)
            rankings.append(shuffled)
        merged = borda_aggregate(rankings)
        assert sorted(merged) == sorted(items)
