"""Integration-style tests for the HypDB facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hypdb import HypDB
from repro.core.query import GroupByQuery
from repro.relation.table import Table
from repro.stats.chi2 import ChiSquaredTest


@pytest.fixture
def simpson_table(rng) -> Table:
    """A minimal Simpson's paradox: Z confounds T and Y."""
    n = 30000
    z = rng.integers(0, 2, n)
    t = (rng.random(n) < 0.15 + 0.7 * z).astype(int)
    y = (rng.random(n) < 0.1 + 0.5 * z - 0.05 * t).astype(int)
    return Table.from_columns({"Z": z.tolist(), "T": t.tolist(), "Y": y.tolist()})


@pytest.fixture
def db(simpson_table) -> HypDB:
    return HypDB(
        simpson_table,
        test=ChiSquaredTest(),
        dependency_filter=None,
        seed=0,
    )


class TestAnalyze:
    def test_detects_bias(self, db):
        report = db.analyze("SELECT T, avg(Y) FROM D GROUP BY T", covariates=["Z"])
        assert report.biased
        assert report.contexts[0].balance_total.biased

    def test_trend_reversal_after_rewrite(self, db):
        report = db.analyze("SELECT T, avg(Y) FROM D GROUP BY T", covariates=["Z"])
        context = report.contexts[0]
        assert context.naive.difference("Y") > 0  # confounding dominates
        assert context.total.difference("Y") < 0  # true effect is negative

    def test_explanations_rank_confounder(self, db):
        report = db.analyze("SELECT T, avg(Y) FROM D GROUP BY T", covariates=["Z"])
        coarse = report.contexts[0].coarse
        assert coarse[0].attribute == "Z"
        assert "Z" in report.contexts[0].fine

    def test_covariate_discovery_runs_when_not_given(self, db):
        report = db.analyze("SELECT T, avg(Y) FROM D GROUP BY T")
        assert report.covariate_discovery is not None
        # Z -> T, Z -> Y with T -> Y: whether Z is T's parent or T's
        # mediator is unidentifiable (single-parent regime); HypDB must
        # surface Z somewhere -- as a covariate or as a candidate mediator.
        assert "Z" in set(report.covariates) | set(report.mediators)
        assert "Z" in report.covariate_discovery.markov_boundary

    def test_accepts_query_object(self, db):
        query = GroupByQuery(treatment="T", outcomes=("Y",))
        report = db.analyze(query, covariates=["Z"])
        assert report.query is query

    def test_compute_direct_false_skips(self, db):
        report = db.analyze(
            "SELECT T, avg(Y) FROM D GROUP BY T",
            covariates=["Z"],
            compute_direct=False,
        )
        assert report.contexts[0].direct is None
        assert report.mediators == ()

    def test_timings_populated(self, db):
        report = db.analyze("SELECT T, avg(Y) FROM D GROUP BY T", covariates=["Z"])
        assert report.timings.total > 0
        assert report.timings.detection >= 0

    def test_format_renders(self, db):
        report = db.analyze("SELECT T, avg(Y) FROM D GROUP BY T", covariates=["Z"])
        rendered = report.format()
        assert "BIASED" in rendered
        assert "rewritten (total)" in rendered
        assert "coarse-grained" in rendered

    def test_context_lookup(self, db):
        report = db.analyze("SELECT T, avg(Y) FROM D GROUP BY T", covariates=["Z"])
        assert report.context(()) is report.contexts[0]
        with pytest.raises(KeyError):
            report.context(("nope",))

    def test_explicit_mediators_used(self, db):
        report = db.analyze(
            "SELECT T, avg(Y) FROM D GROUP BY T", covariates=[], mediators=["Z"]
        )
        assert report.mediators == ("Z",)

    def test_grouping_contexts_analyzed_separately(self, rng):
        n = 20000
        x = rng.integers(0, 2, n)
        z = rng.integers(0, 2, n)
        t = (rng.random(n) < 0.2 + 0.6 * z).astype(int)
        y = (rng.random(n) < 0.2 + 0.4 * z).astype(int)
        table = Table.from_columns(
            {"X": x.tolist(), "Z": z.tolist(), "T": t.tolist(), "Y": y.tolist()}
        )
        db = HypDB(table, test=ChiSquaredTest(), dependency_filter=None, seed=0)
        report = db.analyze(
            "SELECT T, X, avg(Y) FROM D GROUP BY T, X", covariates=["Z"]
        )
        assert len(report.contexts) == 2
        assert {context.values for context in report.contexts} == {(0,), (1,)}

    def test_invalid_dependency_filter_string(self, simpson_table):
        with pytest.raises(ValueError, match="dependency_filter"):
            HypDB(simpson_table, dependency_filter="bogus")

    def test_overlap_failure_reported_not_raised(self):
        table = Table.from_columns(
            {
                "Z": [0, 0, 1, 1] * 10,
                "T": [0, 0, 1, 1] * 10,
                "Y": [0, 1, 0, 1] * 10,
            }
        )
        db = HypDB(table, test=ChiSquaredTest(), dependency_filter=None)
        report = db.analyze("SELECT T, avg(Y) FROM D GROUP BY T", covariates=["Z"])
        assert report.contexts[0].total.error is not None
        rendered = report.format()
        assert "unavailable" in rendered
