"""Tests for the CD algorithm (Alg. 1)."""

from __future__ import annotations

import pytest

from repro.causal.bayesnet import DiscreteBayesNet
from repro.causal.dag import CausalDAG
from repro.causal.oracle import DSeparationOracle
from repro.core.discovery import CovariateDiscoverer
from repro.datasets.cancer import cancer_dag
from repro.stats.chi2 import ChiSquaredTest


class TestWithOracle:
    def test_paper_dag_parents_found(self, paper_dag):
        oracle = DSeparationOracle(paper_dag)
        result = CovariateDiscoverer(oracle).discover(
            None, "T", outcome="Y", candidates=paper_dag.nodes()
        )
        assert set(result.covariates) == {"Z", "W"}
        assert not result.used_fallback

    def test_spouse_not_reported_as_parent(self, paper_dag):
        """D (a parent of T's child C) must not survive Phase II."""
        oracle = DSeparationOracle(paper_dag)
        result = CovariateDiscoverer(oracle).discover(
            None, "T", outcome="Y", candidates=paper_dag.nodes()
        )
        assert "D" not in result.covariates

    def test_cancer_dag_nodes_with_nonadjacent_parents(self):
        """CD identifies PA exactly when two parents are non-adjacent."""
        dag = cancer_dag()
        oracle = DSeparationOracle(dag)
        discoverer = CovariateDiscoverer(oracle, max_cond_size=4)
        for node in ("Smoking", "Lung_Cancer", "Coughing", "Car_Accident"):
            result = discoverer.discover(None, node, candidates=dag.nodes())
            assert set(result.covariates) == dag.parents(node), node
            assert not result.used_fallback

    def test_adjacent_parents_trigger_fallback(self):
        """Fatigue's parents (Lung_Cancer -> Coughing) are adjacent, so the
        identification assumption of Sec. 4 fails and CD must fall back to
        the Markov boundary."""
        dag = cancer_dag()
        oracle = DSeparationOracle(dag)
        result = CovariateDiscoverer(oracle, max_cond_size=4).discover(
            None, "Fatigue", outcome="Car_Accident", candidates=dag.nodes()
        )
        assert result.used_fallback
        assert set(result.covariates) == dag.markov_boundary("Fatigue") - {"Car_Accident"}

    def test_single_parent_falls_back_to_boundary(self):
        dag = CausalDAG(["P", "T", "Y"], [("P", "T"), ("T", "Y")])
        oracle = DSeparationOracle(dag)
        result = CovariateDiscoverer(oracle).discover(
            None, "T", outcome="Y", candidates=dag.nodes()
        )
        assert result.used_fallback
        assert set(result.covariates) == {"P"}  # MB(T) - {Y}

    def test_fallback_exclude_removes_mediators(self):
        dag = CausalDAG(["T", "M", "Y"], [("T", "M"), ("M", "Y")])
        oracle = DSeparationOracle(dag)
        result = CovariateDiscoverer(oracle).discover(
            None, "T", outcome="Y", candidates=dag.nodes(), fallback_exclude=["M"]
        )
        assert result.used_fallback
        assert result.covariates == ()

    def test_markov_boundary_reported(self, paper_dag):
        oracle = DSeparationOracle(paper_dag)
        result = CovariateDiscoverer(oracle).discover(
            None, "T", candidates=paper_dag.nodes()
        )
        assert set(result.markov_boundary) == paper_dag.markov_boundary("T")

    def test_test_count_tracked(self, paper_dag):
        oracle = DSeparationOracle(paper_dag)
        result = CovariateDiscoverer(oracle).discover(
            None, "T", candidates=paper_dag.nodes()
        )
        assert result.n_tests > 0
        assert result.n_tests == oracle.calls

    def test_candidates_required_without_table(self, paper_dag):
        oracle = DSeparationOracle(paper_dag)
        with pytest.raises(ValueError, match="candidates"):
            CovariateDiscoverer(oracle).discover(None, "T")

    def test_repr_mentions_source(self, paper_dag):
        oracle = DSeparationOracle(paper_dag)
        result = CovariateDiscoverer(oracle).discover(
            None, "T", candidates=paper_dag.nodes()
        )
        assert "Alg. 1" in repr(result)


class TestWithData:
    @pytest.fixture
    def sampled(self):
        from tests.conftest import strong_binary_net

        dag = CausalDAG(
            ["Z", "W", "T", "Y"],
            [("Z", "T"), ("W", "T"), ("T", "Y")],
        )
        net, domains = strong_binary_net(dag)
        return dag, net.sample(30000, rng=22, domains=domains)

    def test_recovers_parents_from_samples(self, sampled):
        dag, table = sampled
        result = CovariateDiscoverer(ChiSquaredTest()).discover(
            table, "T", outcome="Y"
        )
        assert set(result.covariates) == {"Z", "W"}

    def test_iamb_blanket_variant(self, sampled):
        from repro.causal.iamb import iamb_markov_blanket

        dag, table = sampled
        result = CovariateDiscoverer(
            ChiSquaredTest(), blanket_algorithm=iamb_markov_blanket
        ).discover(table, "T", outcome="Y")
        assert set(result.covariates) == {"Z", "W"}

    def test_symmetry_correction_can_be_disabled(self, sampled):
        dag, table = sampled
        result = CovariateDiscoverer(
            ChiSquaredTest(), symmetry_correction=False
        ).discover(table, "T", outcome="Y")
        assert {"Z", "W"} <= set(result.covariates)
