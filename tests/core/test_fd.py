"""Unit tests for logical-dependency filtering (Sec. 4)."""

from __future__ import annotations

import pytest

from repro.core.fd import LogicalDependencyFilter
from repro.relation.table import Table


@pytest.fixture
def fd_table(rng) -> Table:
    n = 4000
    airport = rng.integers(0, 4, n)
    wac = airport + 100  # bijection with airport
    carrier = rng.integers(0, 2, n)
    carrier_name = ["AA Inc" if value == 0 else "UA Inc" for value in carrier]
    delayed = (rng.random(n) < 0.2 + 0.1 * airport).astype(int)
    return Table.from_columns(
        {
            "Airport": airport.tolist(),
            "AirportWAC": wac.tolist(),
            "Carrier": carrier.tolist(),
            "CarrierName": carrier_name,
            "Delayed": delayed.tolist(),
            "RowID": list(range(n)),
        }
    )


class TestFdFiltering:
    def test_treatment_equivalent_dropped(self, fd_table):
        report = LogicalDependencyFilter(seed=0).filter(fd_table, "Carrier")
        assert "CarrierName" not in report.kept
        assert "FD" in report.reason("CarrierName")

    def test_duplicate_pair_keeps_one(self, fd_table):
        report = LogicalDependencyFilter(seed=0).filter(fd_table, "Carrier")
        kept = set(report.kept)
        assert ("Airport" in kept) != ("AirportWAC" in kept)
        # Smallest-domain-first tie-break prefers the original attribute.
        assert "Airport" in kept

    def test_key_attribute_dropped(self, fd_table):
        report = LogicalDependencyFilter(seed=0).filter(fd_table, "Carrier")
        assert "RowID" not in report.kept
        assert "key-like" in report.reason("RowID")

    def test_genuine_attributes_survive(self, fd_table):
        report = LogicalDependencyFilter(seed=0).filter(fd_table, "Carrier")
        assert "Delayed" in report.kept

    def test_treatment_never_in_kept(self, fd_table):
        report = LogicalDependencyFilter(seed=0).filter(fd_table, "Carrier")
        assert "Carrier" not in report.kept

    def test_candidates_restrict_universe(self, fd_table):
        report = LogicalDependencyFilter(seed=0).filter(
            fd_table, "Carrier", candidates=["Airport", "Delayed"]
        )
        assert set(report.kept) <= {"Airport", "Delayed"}

    def test_reason_none_for_kept(self, fd_table):
        report = LogicalDependencyFilter(seed=0).filter(fd_table, "Carrier")
        assert report.reason("Delayed") is None


class TestKeyDetection:
    def test_detects_unique_key(self, rng):
        n = 4000
        table = Table.from_columns(
            {
                "ID": list(range(n)),
                "Cat": rng.integers(0, 3, n).tolist(),
            }
        )
        keys = LogicalDependencyFilter(seed=1).detect_key_attributes(table)
        assert "ID" in keys
        assert "Cat" not in keys

    def test_detects_high_cardinality_near_key(self, rng):
        n = 4000
        table = Table.from_columns(
            {
                "TailNum": rng.integers(0, n // 2, n).tolist(),
                "Binary": rng.integers(0, 2, n).tolist(),
            }
        )
        keys = LogicalDependencyFilter(seed=2).detect_key_attributes(table)
        assert "TailNum" in keys
        assert "Binary" not in keys

    def test_small_table_returns_nothing(self):
        table = Table.from_columns({"A": [1, 2, 3]})
        assert LogicalDependencyFilter(seed=3).detect_key_attributes(table) == set()

    def test_moderate_cardinality_not_flagged(self, rng):
        """A 12-category attribute (like Month) is not key-like."""
        n = 6000
        table = Table.from_columns({"Month": rng.integers(1, 13, n).tolist()})
        keys = LogicalDependencyFilter(seed=4).detect_key_attributes(table)
        assert keys == set()
