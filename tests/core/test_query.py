"""Unit tests for the GroupByQuery model and its contexts."""

from __future__ import annotations

import pytest

from repro.core.query import GroupByQuery
from repro.relation.predicates import Eq, In, TRUE
from repro.relation.table import Table


@pytest.fixture
def table() -> Table:
    return Table.from_columns(
        {
            "T": ["a", "b", "a", "b", "a", "b"],
            "X": ["p", "p", "q", "q", "p", "q"],
            "Y": [1, 0, 1, 1, 0, 0],
        }
    )


class TestConstruction:
    def test_requires_outcome(self):
        with pytest.raises(ValueError, match="avg"):
            GroupByQuery(treatment="T", outcomes=())

    def test_treatment_outcome_overlap_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            GroupByQuery(treatment="T", outcomes=("T",))

    def test_grouping_overlap_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            GroupByQuery(treatment="T", outcomes=("Y",), groupings=("T",))

    def test_group_by_columns(self):
        query = GroupByQuery(treatment="T", outcomes=("Y",), groupings=("X",))
        assert query.group_by_columns() == ("T", "X")


class TestFromSql:
    def test_first_group_by_is_treatment(self):
        query = GroupByQuery.from_sql("SELECT avg(Y) FROM D GROUP BY T, X")
        assert query.treatment == "T"
        assert query.groupings == ("X",)

    def test_explicit_treatment(self):
        query = GroupByQuery.from_sql(
            "SELECT avg(Y) FROM D GROUP BY T, X", treatment="X"
        )
        assert query.treatment == "X"
        assert query.groupings == ("T",)

    def test_treatment_must_be_grouped(self):
        with pytest.raises(ValueError, match="must appear in GROUP BY"):
            GroupByQuery.from_sql("SELECT avg(Y) FROM D GROUP BY T", treatment="W")

    def test_group_by_required(self):
        with pytest.raises(ValueError, match="GROUP BY"):
            GroupByQuery.from_sql("SELECT avg(Y) FROM D")

    def test_where_compiled(self):
        query = GroupByQuery.from_sql(
            "SELECT avg(Y) FROM D WHERE T IN ('a') GROUP BY T"
        )
        assert query.where == In("T", ["a"])


class TestContexts:
    def test_no_groupings_single_context(self, table):
        query = GroupByQuery(treatment="T", outcomes=("Y",))
        contexts = query.contexts(table)
        assert len(contexts) == 1
        assert contexts[0].values == ()
        assert contexts[0].n_rows == 6
        assert contexts[0].label(()) == "(all)"

    def test_groupings_split_contexts(self, table):
        query = GroupByQuery(treatment="T", outcomes=("Y",), groupings=("X",))
        contexts = query.contexts(table)
        assert [context.values for context in contexts] == [("p",), ("q",)]
        assert sum(context.n_rows for context in contexts) == 6

    def test_where_applies_before_split(self, table):
        query = GroupByQuery(
            treatment="T", outcomes=("Y",), groupings=("X",), where=Eq("T", "a")
        )
        contexts = query.contexts(table)
        for context in contexts:
            assert set(context.table.column("T")) == {"a"}

    def test_context_predicate_reproduces_rows(self, table):
        query = GroupByQuery(treatment="T", outcomes=("Y",), groupings=("X",))
        for context in query.contexts(table):
            refiltered = table.where(context.predicate)
            assert sorted(refiltered.rows()) == sorted(context.table.rows())

    def test_prefiltered_table_reused(self, table):
        query = GroupByQuery(treatment="T", outcomes=("Y",))
        filtered = table.where(TRUE)
        contexts = query.contexts(table, filtered=filtered)
        assert contexts[0].table is filtered

    def test_context_label(self, table):
        query = GroupByQuery(treatment="T", outcomes=("Y",), groupings=("X",))
        context = query.contexts(table)[0]
        assert context.label(("X",)) == "X=p"

    def test_treatment_values(self, table):
        query = GroupByQuery(treatment="T", outcomes=("Y",), where=Eq("X", "p"))
        assert query.treatment_values(table) == ["a", "b"]

    def test_analysis_columns(self):
        query = GroupByQuery(
            treatment="T", outcomes=("Y",), groupings=("X",), where=Eq("W", 1)
        )
        assert set(query.analysis_columns()) == {"T", "X", "Y", "W"}
