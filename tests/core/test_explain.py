"""Unit tests for coarse- and fine-grained explanations (Sec. 3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.explain import (
    coarse_grained_explanations,
    fine_grained_explanations,
)
from repro.relation.table import Table


@pytest.fixture
def two_confounders(rng) -> Table:
    """Z1 strongly confounds T; Z2 weakly; W is pure noise."""
    n = 20000
    z1 = rng.integers(0, 2, n)
    z2 = rng.integers(0, 2, n)
    w = rng.integers(0, 2, n)
    t = (rng.random(n) < 0.2 + 0.5 * z1 + 0.1 * z2).astype(int)
    y = (rng.random(n) < 0.1 + 0.4 * z1 + 0.1 * z2).astype(int)
    return Table.from_columns(
        {
            "Z1": z1.tolist(),
            "Z2": z2.tolist(),
            "W": w.tolist(),
            "T": t.tolist(),
            "Y": y.tolist(),
        }
    )


class TestCoarseGrained:
    def test_strong_confounder_ranked_first(self, two_confounders):
        explanations = coarse_grained_explanations(
            two_confounders, "T", ["Z1", "Z2", "W"]
        )
        assert explanations[0].attribute == "Z1"
        assert explanations[0].responsibility > explanations[1].responsibility

    def test_responsibilities_sum_to_one(self, two_confounders):
        explanations = coarse_grained_explanations(
            two_confounders, "T", ["Z1", "Z2", "W"]
        )
        assert sum(item.responsibility for item in explanations) == pytest.approx(1.0)

    def test_noise_attribute_near_zero(self, two_confounders):
        explanations = coarse_grained_explanations(
            two_confounders, "T", ["Z1", "Z2", "W"]
        )
        by_name = {item.attribute: item.responsibility for item in explanations}
        assert by_name["W"] < 0.05

    def test_single_variable_gets_all_responsibility(self, confounded_table):
        explanations = coarse_grained_explanations(confounded_table, "T", ["Z"])
        assert explanations[0].responsibility == pytest.approx(1.0)

    def test_empty_variables(self, confounded_table):
        assert coarse_grained_explanations(confounded_table, "T", []) == []

    def test_balanced_data_all_zero(self, rng):
        n = 5000
        table = Table.from_columns(
            {
                "T": rng.integers(0, 2, n).tolist(),
                "Z": rng.integers(0, 2, n).tolist(),
            }
        )
        explanations = coarse_grained_explanations(
            table, "T", ["Z"], estimator="plugin"
        )
        assert explanations[0].responsibility in (0.0, 1.0)
        assert explanations[0].information_drop < 0.001

    def test_treatment_rejected(self, confounded_table):
        with pytest.raises(ValueError, match="treatment"):
            coarse_grained_explanations(confounded_table, "T", ["T"])

    def test_repr(self, confounded_table):
        explanations = coarse_grained_explanations(confounded_table, "T", ["Z"])
        assert "rho" in repr(explanations[0])


class TestFineGrained:
    def test_top_triples_capture_confounding(self, confounded_table):
        triples = fine_grained_explanations(confounded_table, "T", "Y", "Z", top_k=2)
        assert len(triples) == 2
        # Strongest pattern: Z=2 co-occurs with T=1, Y=1.
        top = triples[0]
        assert (top.treatment_value, top.outcome_value, top.attribute_value) == (1, 1, 2)

    def test_kappas_reported(self, confounded_table):
        triples = fine_grained_explanations(confounded_table, "T", "Y", "Z", top_k=1)
        assert triples[0].kappa_treatment > 0
        assert triples[0].kappa_outcome > 0

    def test_top_k_bounds_output(self, confounded_table):
        triples = fine_grained_explanations(confounded_table, "T", "Y", "Z", top_k=100)
        assert len(triples) == len(confounded_table.distinct(["T", "Y", "Z"]))

    def test_top_k_positive_required(self, confounded_table):
        with pytest.raises(ValueError, match="positive"):
            fine_grained_explanations(confounded_table, "T", "Y", "Z", top_k=0)

    def test_empty_table(self):
        table = Table.from_columns({"T": [], "Y": [], "Z": []})
        assert fine_grained_explanations(table, "T", "Y", "Z") == []

    def test_deterministic(self, confounded_table):
        first = fine_grained_explanations(confounded_table, "T", "Y", "Z", top_k=3)
        second = fine_grained_explanations(confounded_table, "T", "Y", "Z", top_k=3)
        assert first == second
