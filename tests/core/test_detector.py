"""Unit tests for bias detection (Def. 3.1)."""

from __future__ import annotations

import pytest

from repro.core.detector import detect_bias, with_joint_column
from repro.relation.table import Table
from repro.stats.chi2 import ChiSquaredTest


class TestWithJointColumn:
    def test_joint_column_encodes_combinations(self, small_table):
        augmented = with_joint_column(small_table, ["Y", "Z"], "J")
        assert augmented.n_groups(["J"]) == small_table.n_groups(["Y", "Z"])

    def test_joint_column_preserves_rows(self, small_table):
        augmented = with_joint_column(small_table, ["Y"], "J")
        assert augmented.n_rows == small_table.n_rows


class TestDetectBias:
    def test_balanced_when_no_variables(self, small_table):
        result = detect_bias(small_table, "T", [], ChiSquaredTest())
        assert not result.biased
        assert result.result.method == "trivial"

    def test_unbalanced_covariate_detected(self, confounded_table):
        result = detect_bias(confounded_table, "T", ["Z"], ChiSquaredTest())
        assert result.biased
        assert result.p_value < 0.01

    def test_balanced_covariate_accepted(self, rng):
        n = 6000
        table = Table.from_columns(
            {
                "T": rng.integers(0, 2, n).tolist(),
                "Z": rng.integers(0, 3, n).tolist(),
            }
        )
        result = detect_bias(table, "T", ["Z"], ChiSquaredTest())
        assert not result.biased

    def test_joint_test_catches_joint_imbalance(self, rng):
        """Two individually balanced variables whose JOINT differs by T."""
        n = 8000
        t = rng.integers(0, 2, n)
        a = rng.integers(0, 2, n)
        # b == a XOR t-ish: marginally balanced, jointly not.
        flip = rng.random(n) < 0.9
        b = (a ^ (t * flip)).astype(int)
        table = Table.from_columns(
            {"T": t.tolist(), "A": a.tolist(), "B": b.tolist()}
        )
        chi2 = ChiSquaredTest()
        joint = detect_bias(table, "T", ["A", "B"], chi2)
        assert joint.biased

    def test_treatment_in_variables_rejected(self, small_table):
        with pytest.raises(ValueError, match="treatment"):
            detect_bias(small_table, "T", ["T", "Y"], ChiSquaredTest())

    def test_repr_shows_verdict(self, confounded_table):
        result = detect_bias(confounded_table, "T", ["Z"], ChiSquaredTest())
        assert "BIASED" in repr(result)

    def test_alpha_threshold_respected(self, confounded_table):
        weak = detect_bias(confounded_table, "T", ["Z"], ChiSquaredTest(), alpha=1e-300)
        assert not weak.biased  # nothing is significant at alpha ~ 0
