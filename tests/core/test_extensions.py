"""Tests for the paper's future-work extensions: SQL emission, effect
bounds, and what-if queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import effect_bounds
from repro.core.query import GroupByQuery
from repro.core.rewrite import NoOverlapError
from repro.core.sqlgen import predicate_to_sql, rewritten_total_effect_sql, sql_literal
from repro.core.whatif import what_if
from repro.relation.predicates import And, Eq, Ge, Gt, In, Le, Lt, Ne, Not, NotIn, Or, TRUE
from repro.relation.table import Table


@pytest.fixture
def confounded(rng) -> Table:
    n = 30000
    z = rng.integers(0, 2, n)
    t = (rng.random(n) < 0.25 + 0.5 * z).astype(int)
    y = (rng.random(n) < 0.2 + 0.4 * z + 0.1 * t).astype(int)
    return Table.from_columns({"Z": z.tolist(), "T": t.tolist(), "Y": y.tolist()})


class TestSqlLiteral:
    def test_numbers_unquoted(self):
        assert sql_literal(5) == "5"
        assert sql_literal(2.5) == "2.5"

    def test_strings_quoted_and_escaped(self):
        assert sql_literal("AA") == "'AA'"
        assert sql_literal("O'Hare") == "'O''Hare'"

    def test_booleans(self):
        assert sql_literal(True) == "TRUE"


class TestPredicateToSql:
    @pytest.mark.parametrize(
        "predicate, expected",
        [
            (TRUE, "TRUE"),
            (Eq("A", 1), "A = 1"),
            (Ne("A", "x"), "A <> 'x'"),
            (In("A", [1, 2]), "A IN (1, 2)"),
            (NotIn("A", ["u"]), "A NOT IN ('u')"),
            (Lt("A", 3), "A < 3"),
            (Le("A", 3), "A <= 3"),
            (Gt("A", 3), "A > 3"),
            (Ge("A", 3), "A >= 3"),
            (Not(Eq("A", 1)), "NOT (A = 1)"),
        ],
    )
    def test_atoms(self, predicate, expected):
        assert predicate_to_sql(predicate) == expected

    def test_conjunction_and_disjunction(self):
        sql = predicate_to_sql(And([Eq("A", 1), Or([Eq("B", 2), Eq("C", 3)])]))
        assert sql == "(A = 1) AND ((B = 2) OR (C = 3))"

    def test_round_trips_through_parser(self):
        """Emitted WHERE text must re-parse to the same predicate."""
        from repro.sql.parser import parse_select

        predicate = And([In("Carrier", ["AA", "UA"]), Gt("Delay", 15)])
        sql = f"SELECT avg(Y) FROM D WHERE {predicate_to_sql(predicate)} GROUP BY T"
        assert parse_select(sql).where == And([In("Carrier", ["AA", "UA"]), Gt("Delay", 15.0)])


class TestRewrittenSql:
    def test_contains_paper_listing_structure(self):
        query = GroupByQuery.from_sql(
            "SELECT Carrier, avg(Delayed) FROM D "
            "WHERE Carrier IN ('AA','UA') GROUP BY Carrier"
        )
        sql = rewritten_total_effect_sql(query, ["Airport", "Year"])
        assert "WITH Blocks AS" in sql
        assert "Weights AS" in sql
        assert "HAVING count(DISTINCT Carrier) = 2" in sql
        assert "GROUP BY Carrier, Airport, Year" in sql
        assert "sum(Blocks.avg_Delayed * Weights.W)" in sql

    def test_groupings_propagate(self):
        query = GroupByQuery(
            treatment="T", outcomes=("Y",), groupings=("X",)
        )
        sql = rewritten_total_effect_sql(query, ["Z"])
        assert "Blocks.X = Weights.X" in sql

    def test_multiple_outcomes(self):
        query = GroupByQuery(treatment="T", outcomes=("Y1", "Y2"))
        sql = rewritten_total_effect_sql(query, ["Z"])
        assert "avg(Y1) AS avg_Y1" in sql
        assert "avg(Y2) AS avg_Y2" in sql

    def test_empty_covariates_rejected(self):
        query = GroupByQuery(treatment="T", outcomes=("Y",))
        with pytest.raises(ValueError, match="Z is empty"):
            rewritten_total_effect_sql(query, [])


class TestEffectBounds:
    def test_envelope_contains_adjusted_truth(self, confounded):
        bounds = effect_bounds(confounded, "T", "Y", ["Z"])
        # True direct effect is ~0.1; naive ~0.3.
        assert bounds.lower < 0.15
        assert bounds.upper > 0.25
        assert bounds.sign_identified()

    def test_empty_set_included(self, confounded):
        bounds = effect_bounds(confounded, "T", "Y", ["Z"])
        subsets = {candidate.covariates for candidate in bounds.candidates}
        assert () in subsets
        assert ("Z",) in subsets

    def test_max_subset_size(self, confounded):
        extended = confounded.with_column(
            "W", (np.arange(confounded.n_rows) % 2).tolist()
        )
        bounds = effect_bounds(extended, "T", "Y", ["Z", "W"], max_subset_size=1)
        assert all(len(c.covariates) <= 1 for c in bounds.candidates)

    def test_non_overlapping_subsets_skipped(self):
        """Z fully determines T here, so adjusting for Z is impossible;
        only the unadjusted (empty-set) estimate survives."""
        table = Table.from_columns(
            {"Z": [0, 0, 1, 1], "T": [0, 0, 1, 1], "Y": [0, 1, 0, 1]}
        )
        bounds = effect_bounds(table, "T", "Y", ["Z"], min_matched_fraction=0.9)
        assert {c.covariates for c in bounds.candidates} == {()}
        assert bounds.n_skipped == 1
        assert bounds.width == 0.0

    def test_width_and_repr(self, confounded):
        bounds = effect_bounds(confounded, "T", "Y", ["Z"])
        assert bounds.width == pytest.approx(bounds.upper - bounds.lower)
        assert "EffectBounds" in repr(bounds)


class TestWhatIf:
    def test_intervention_removes_confounding(self, confounded):
        answer = what_if(confounded, "T", "Y", ["Z"])
        # do(T=1) - do(T=0) must estimate the true ~0.1 effect, not the
        # confounded ~0.3 association.
        effect = answer.interventions[1] - answer.interventions[0]
        assert effect == pytest.approx(0.1, abs=0.03)

    def test_factual_average_matches_table(self, confounded):
        answer = what_if(confounded, "T", "Y", ["Z"])
        assert answer.factual_average == pytest.approx(
            float(np.mean(confounded.numeric("Y"))), abs=1e-9
        )

    def test_subpopulation_where(self, confounded):
        answer = what_if(confounded, "T", "Y", ["Z"], where=Eq("Z", 1))
        assert answer.n_rows == confounded.where(Eq("Z", 1)).n_rows
        # Within a Z stratum there is no confounding: intervention equals
        # the stratum's conditional means.
        assert answer.interventions[1] - answer.interventions[0] == pytest.approx(
            0.1, abs=0.04
        )

    def test_empty_subpopulation_rejected(self, confounded):
        with pytest.raises(ValueError, match="no rows"):
            what_if(confounded, "T", "Y", ["Z"], where=Eq("Z", 99))

    def test_effect_of(self, confounded):
        answer = what_if(confounded, "T", "Y", ["Z"])
        assert answer.effect_of(1) == pytest.approx(
            answer.interventions[1] - answer.factual_average
        )
