"""Unit tests for query rewriting: adjusted total and direct effects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rewrite import NoOverlapError, direct_effect, total_effect
from repro.relation.table import Table


def make_confounded(rng, n=40000, direct=0.0):
    """Z -> T, Z -> Y, T -> Y with a controllable direct effect."""
    z = rng.integers(0, 2, n)
    t = (rng.random(n) < 0.25 + 0.5 * z).astype(int)
    y = (rng.random(n) < 0.2 + 0.4 * z + direct * t).astype(int)
    return Table.from_columns({"Z": z.tolist(), "T": t.tolist(), "Y": y.tolist()})


class TestTotalEffect:
    def test_removes_confounding(self, rng):
        table = make_confounded(rng, direct=0.0)
        answer = total_effect(table, "T", ["Y"], ["Z"])
        assert answer.difference("Y") == pytest.approx(0.0, abs=0.02)

    def test_naive_estimate_is_biased(self, rng):
        table = make_confounded(rng, direct=0.0)
        naive = total_effect(table, "T", ["Y"], [])
        assert abs(naive.difference("Y")) > 0.1

    def test_recovers_true_effect(self, rng):
        table = make_confounded(rng, direct=0.15)
        answer = total_effect(table, "T", ["Y"], ["Z"])
        assert answer.difference("Y") == pytest.approx(0.15, abs=0.025)

    def test_exact_matching_prunes_partial_blocks(self):
        table = Table.from_columns(
            {
                # Block z=1 has only T=0 rows -> pruned by exact matching.
                "Z": [0, 0, 0, 0, 1, 1],
                "T": [0, 1, 0, 1, 0, 0],
                "Y": [0, 1, 0, 1, 1, 1],
            }
        )
        answer = total_effect(table, "T", ["Y"], ["Z"])
        assert answer.n_blocks == 2
        assert answer.n_matched_blocks == 1
        assert answer.matched_fraction == pytest.approx(4 / 6)
        assert answer.average(1, "Y") == pytest.approx(1.0)

    def test_no_overlap_raises(self):
        table = Table.from_columns(
            {"Z": [0, 0, 1, 1], "T": [0, 0, 1, 1], "Y": [0, 1, 0, 1]}
        )
        with pytest.raises(NoOverlapError, match="overlap fails"):
            total_effect(table, "T", ["Y"], ["Z"])

    def test_empty_covariates_equals_group_means(self, small_table):
        answer = total_effect(small_table, "T", ["Y"], [])
        assert answer.average("a", "Y") == pytest.approx(1 / 3)
        assert answer.average("b", "Y") == pytest.approx(1.0)

    def test_multiple_outcomes(self, rng):
        table = make_confounded(rng, n=5000)
        extended = table.with_column("Y2", table.column("Y"))
        answer = total_effect(extended, "T", ["Y", "Y2"], ["Z"])
        assert answer.average(1, "Y") == answer.average(1, "Y2")

    def test_single_treatment_value_rejected(self):
        table = Table.from_columns({"T": [0, 0], "Y": [0, 1]})
        with pytest.raises(ValueError, match="at least two"):
            total_effect(table, "T", ["Y"], [])

    def test_multivalued_treatment_difference_undefined(self):
        table = Table.from_columns({"T": [0, 1, 2, 0, 1, 2], "Y": [0, 1, 0, 1, 0, 1]})
        answer = total_effect(table, "T", ["Y"], [])
        with pytest.raises(ValueError, match="binary"):
            answer.difference("Y")
        assert len(answer.treatment_values) == 3

    def test_adjustment_formula_by_hand(self):
        """Verify Eq. 2 against a hand computation."""
        table = Table.from_columns(
            {
                "Z": [0, 0, 0, 0, 1, 1, 1, 1],
                "T": [0, 0, 1, 1, 0, 1, 1, 1],
                "Y": [0, 1, 1, 1, 0, 1, 0, 1],
            }
        )
        answer = total_effect(table, "T", ["Y"], ["Z"])
        # Both blocks matched. Pr(z=0)=0.5, Pr(z=1)=0.5.
        # E[Y|t=1,z=0]=1.0, E[Y|t=1,z=1]=2/3 -> 0.5*1 + 0.5*2/3 = 5/6.
        assert answer.average(1, "Y") == pytest.approx(5 / 6)
        # E[Y|t=0,z=0]=0.5, E[Y|t=0,z=1]=0.0 -> 0.25.
        assert answer.average(0, "Y") == pytest.approx(0.25)


class TestDirectEffect:
    def make_mediated(self, rng, n=60000, direct=0.0):
        """T -> M -> Y with optional direct T -> Y edge and confounder Z."""
        z = rng.integers(0, 2, n)
        t = (rng.random(n) < 0.3 + 0.4 * z).astype(int)
        m = (rng.random(n) < 0.2 + 0.5 * t).astype(int)
        y = (rng.random(n) < 0.15 + 0.4 * m + 0.15 * z + direct * t).astype(int)
        return Table.from_columns(
            {"Z": z.tolist(), "T": t.tolist(), "M": m.tolist(), "Y": y.tolist()}
        )

    def test_zero_direct_effect_detected(self, rng):
        table = self.make_mediated(rng, direct=0.0)
        answer = direct_effect(table, "T", ["Y"], ["Z"], ["M"])
        assert answer.difference("Y") == pytest.approx(0.0, abs=0.02)

    def test_total_effect_remains(self, rng):
        table = self.make_mediated(rng, direct=0.0)
        answer = total_effect(table, "T", ["Y"], ["Z"])
        assert answer.difference("Y") > 0.1  # mediated path intact

    def test_recovers_direct_component(self, rng):
        table = self.make_mediated(rng, direct=0.12)
        answer = direct_effect(table, "T", ["Y"], ["Z"], ["M"])
        assert answer.difference("Y") == pytest.approx(0.12, abs=0.025)

    def test_no_mediators_equals_group_means(self, small_table):
        answer = direct_effect(small_table, "T", ["Y"], [], [])
        assert answer.kind == "direct"
        assert answer.average("a", "Y") == pytest.approx(1 / 3)

    def test_reference_defaults_to_largest(self, rng):
        table = self.make_mediated(rng, n=5000)
        answer = direct_effect(table, "T", ["Y"], ["Z"], ["M"])
        assert answer.reference == 1

    def test_explicit_reference(self, rng):
        table = self.make_mediated(rng, n=20000)
        answer = direct_effect(table, "T", ["Y"], ["Z"], ["M"], reference=0)
        assert answer.reference == 0

    def test_bad_reference_rejected(self, rng):
        table = self.make_mediated(rng, n=2000)
        with pytest.raises(ValueError, match="observed treatment value"):
            direct_effect(table, "T", ["Y"], ["Z"], ["M"], reference=7)

    def test_overlapping_z_m_rejected(self, rng):
        table = self.make_mediated(rng, n=2000)
        with pytest.raises(ValueError, match="overlap"):
            direct_effect(table, "T", ["Y"], ["Z"], ["Z"])

    def test_no_overlap_raises(self):
        table = Table.from_columns(
            {"M": [0, 0, 1, 1], "T": [0, 0, 1, 1], "Y": [0, 1, 0, 1]}
        )
        with pytest.raises(NoOverlapError):
            direct_effect(table, "T", ["Y"], [], ["M"])

    def test_matched_fraction_reported(self, rng):
        table = self.make_mediated(rng, n=3000)
        answer = direct_effect(table, "T", ["Y"], ["Z"], ["M"])
        assert 0.0 < answer.matched_fraction <= 1.0

    def test_repr(self, rng):
        table = self.make_mediated(rng, n=2000)
        answer = direct_effect(table, "T", ["Y"], ["Z"], ["M"])
        assert "direct" in repr(answer)
