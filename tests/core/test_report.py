"""Unit tests for the report objects."""

from __future__ import annotations

import pytest

from repro.core.detector import BalanceResult
from repro.core.query import GroupByQuery
from repro.core.report import (
    BiasReport,
    ContextReport,
    EffectEstimate,
    Timings,
    canonical_json_bytes,
    json_value,
)
from repro.stats.base import CIResult


def make_estimate(kind="naive", error=None, p=0.001):
    if error is not None:
        return EffectEstimate(
            kind=kind, treatment_values=(), outcomes=("Y",), error=error
        )
    return EffectEstimate(
        kind=kind,
        treatment_values=("a", "b"),
        outcomes=("Y",),
        averages={"a": {"Y": 0.2}, "b": {"Y": 0.5}},
        significance={"Y": CIResult(statistic=0.01, p_value=p, method="chi2")},
    )


def make_context(biased=True, direct_biased=False):
    balance = BalanceResult(
        variables=("Z",),
        result=CIResult(statistic=0.1, p_value=0.0001 if biased else 0.9, method="chi2"),
    )
    balance_direct = BalanceResult(
        variables=("Z", "M"),
        result=CIResult(
            statistic=0.1, p_value=0.0001 if direct_biased else 0.9, method="chi2"
        ),
    )
    return ContextReport(
        values=(),
        label="(all)",
        n_rows=100,
        balance_total=balance,
        balance_direct=balance_direct,
        naive=make_estimate("naive"),
        total=make_estimate("total"),
        direct=make_estimate("direct"),
    )


class TestEffectEstimate:
    def test_average_and_difference(self):
        estimate = make_estimate()
        assert estimate.average("b") == 0.5
        assert estimate.difference() == pytest.approx(0.3)
        assert estimate.p_value() == 0.001

    def test_error_estimate_blocks_access(self):
        estimate = make_estimate(error="no overlap")
        with pytest.raises(ValueError, match="no overlap"):
            estimate.average("a")

    def test_difference_requires_binary(self):
        estimate = EffectEstimate(
            kind="naive",
            treatment_values=("a", "b", "c"),
            outcomes=("Y",),
            averages={v: {"Y": 0.0} for v in "abc"},
        )
        with pytest.raises(ValueError, match="binary"):
            estimate.difference()


class TestContextReport:
    def test_biased_from_total_balance(self):
        assert make_context(biased=True).biased
        assert not make_context(biased=False).biased

    def test_biased_from_direct_balance_only(self):
        """The Berkeley pattern: Z = () balanced, Z+M unbalanced."""
        context = make_context(biased=False, direct_biased=True)
        assert context.biased


class TestTimings:
    def test_total(self):
        timings = Timings(detection=1.0, explanation=0.5, resolution=0.25)
        assert timings.total == pytest.approx(1.75)


class TestBiasReport:
    def make_report(self, biased=True):
        query = GroupByQuery(treatment="T", outcomes=("Y",))
        return BiasReport(
            query=query,
            covariates=("Z",),
            mediators=("M",),
            covariate_discovery=None,
            contexts=(make_context(biased=biased),),
        )

    def test_biased_aggregates_contexts(self):
        assert self.make_report(biased=True).biased
        assert not self.make_report(biased=False).biased

    def test_context_lookup(self):
        report = self.make_report()
        assert report.context(()) is report.contexts[0]
        with pytest.raises(KeyError):
            report.context(("x",))

    def test_format_sections(self):
        rendered = self.make_report().format()
        assert "Covariates (Z): ['Z']" in rendered
        assert "Mediators  (M): ['M']" in rendered
        assert "SQL answer" in rendered
        assert "rewritten (total)" in rendered
        assert "rewritten (direct)" in rendered
        assert "diff=" in rendered

    def test_format_reports_errors(self):
        query = GroupByQuery(treatment="T", outcomes=("Y",))
        context = ContextReport(
            values=(),
            label="(all)",
            n_rows=10,
            balance_total=None,
            balance_direct=None,
            naive=make_estimate("naive"),
            total=make_estimate("total", error="overlap fails"),
            direct=None,
        )
        report = BiasReport(
            query=query,
            covariates=(),
            mediators=(),
            covariate_discovery=None,
            contexts=(context,),
        )
        assert "unavailable (overlap fails)" in report.format()


class TestSerialization:
    def make_report(self):
        query = GroupByQuery(treatment="T", outcomes=("Y",))
        return BiasReport(
            query=query,
            covariates=("Z",),
            mediators=("M",),
            covariate_discovery=None,
            contexts=(make_context(),),
            timings=Timings(detection=1.0, explanation=0.5, resolution=0.25),
        )

    def test_to_dict_is_json_ready(self):
        import json

        payload = self.make_report().to_dict()
        json.dumps(payload)  # raises on any non-JSON type
        assert payload["treatment"] == "T"
        assert payload["covariates"] == ["Z"]
        assert payload["biased"] is True
        context = payload["contexts"][0]
        assert context["balance_total"]["biased"] is True
        assert context["naive"]["averages"][0] == {
            "treatment_value": "a",
            "by_outcome": {"Y": 0.2},
        }

    def test_to_dict_excludes_wall_clock_timings(self):
        payload = self.make_report().to_dict()
        assert "timings" not in payload
        assert self.make_report().timings.to_dict()["total"] == pytest.approx(1.75)

    def test_json_bytes_is_canonical(self):
        import json

        first = self.make_report().json_bytes()
        second = self.make_report().json_bytes()
        assert first == second
        # Canonical encoding: sorted keys, no whitespace, round-trips.
        assert b" " not in first.replace(b"SQL answer", b"")[:200]
        parsed = json.loads(first)
        assert canonical_json_bytes(parsed) == first

    def test_nan_and_exotic_values_become_json(self):
        nan = float("nan")
        estimate = EffectEstimate(
            kind="naive",
            treatment_values=(nan, (1, 2)),
            outcomes=("Y",),
            averages={
                nan: {"Y": float("nan")},
                (1, 2): {"Y": 0.5},
            },
        )
        payload = estimate.to_dict()
        assert payload["treatment_values"][0] is None
        assert payload["treatment_values"][1] == "(1, 2)"
        assert payload["averages"][0]["by_outcome"]["Y"] is None
        canonical_json_bytes(payload)  # NaN never reaches the encoder

    def test_json_value_passthrough(self):
        assert json_value("s") == "s"
        assert json_value(3) == 3
        assert json_value(0.5) == 0.5
        assert json_value(True) is True
        assert json_value(None) is None
        assert json_value(float("inf")) is None
