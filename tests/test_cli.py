"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import main
from repro.datasets import staples_data


@pytest.fixture
def staples_csv(tmp_path):
    table = staples_data(n_rows=4000, seed=4)
    path = tmp_path / "staples.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        writer.writerows(table.rows())
    return str(path)


class TestQueryCommand:
    def test_prints_group_averages(self, staples_csv, capsys):
        code = main(
            [
                "query",
                "--csv",
                staples_csv,
                "--sql",
                "SELECT Income, avg(Price) FROM t GROUP BY Income",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg(Price)" in out

    def test_bad_sql_reports_error(self, staples_csv, capsys):
        code = main(["query", "--csv", staples_csv, "--sql", "SELECT FROM"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_full_pipeline_with_known_sets(self, staples_csv, capsys):
        code = main(
            [
                "analyze",
                "--csv",
                staples_csv,
                "--sql",
                "SELECT Income, avg(Price) FROM t GROUP BY Income",
                "--covariates",
                "--mediators",
                "Distance",
                "--test",
                "chi2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Covariates (Z): []" in out
        assert "Mediators  (M): ['Distance']" in out
        assert "rewritten (direct)" in out

    def test_discovery_path(self, staples_csv, capsys):
        code = main(
            [
                "analyze",
                "--csv",
                staples_csv,
                "--sql",
                "SELECT Income, avg(Price) FROM t GROUP BY Income",
                "--test",
                "chi2",
                "--no-direct",
            ]
        )
        assert code == 0
        assert "Query:" in capsys.readouterr().out


class TestDiscoverCommand:
    def test_prints_covariates(self, staples_csv, capsys):
        code = main(
            [
                "discover",
                "--csv",
                staples_csv,
                "--treatment",
                "Income",
                "--outcome",
                "Price",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "covariates" in out
        assert "markov boundary" in out


class TestServeCommand:
    def test_parser_accepts_serve_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--csv", "staples=/tmp/staples.csv",
                "--cache-entries", "16",
                "--disk-cache", "/tmp/cache",
                "--jobs", "2",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.csv == ["staples=/tmp/staples.csv"]
        assert args.cache_entries == 16

    def test_bad_csv_spec_is_an_error(self, capsys):
        code = main(["serve", "--port", "0", "--csv", "no-equals-sign"])
        assert code == 2
        assert "NAME=PATH" in capsys.readouterr().err

    def test_serve_registers_and_listens(self, staples_csv):
        """Drive _run_serve's setup path, then shut the server down."""
        import threading

        from repro.cli import build_parser, _run_serve
        from repro.engine import SerialEngine
        import repro.cli as cli_module
        import repro.service.http as http_module

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--csv", f"staples={staples_csv}"]
        )
        started = threading.Event()
        captured = {}
        original = http_module.ServiceHTTPServer.serve_forever

        def fake_serve_forever(self, poll_interval=0.5):
            captured["server"] = self
            started.set()

        assert cli_module.make_server is http_module.make_server
        http_module.ServiceHTTPServer.serve_forever = fake_serve_forever
        try:
            code = _run_serve(args, SerialEngine())
        finally:
            http_module.ServiceHTTPServer.serve_forever = original
        assert code == 0
        assert started.is_set()
        service = captured["server"].service
        assert service.registry.names() == ["staples"]

    def test_serve_sharded_registers_through_the_router(self, staples_csv, capsys):
        """``serve --shards N`` spawns workers, routes --csv registrations
        through the router, and tears the fleet down on exit."""
        import json

        import repro.service.shard.router as router_module
        from repro.cli import _run_serve, build_parser
        from repro.engine import SerialEngine

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--shards", "2", "--csv", f"staples={staples_csv}"]
        )
        captured = {}
        original = router_module.RouterHTTPServer.serve_forever

        def fake_serve_forever(self, poll_interval=0.5):
            router = self.router
            captured["datasets"] = json.loads(router.handle_datasets()[1])["datasets"]
            captured["live"] = router.describe()["live"]

        router_module.RouterHTTPServer.serve_forever = fake_serve_forever
        try:
            code = _run_serve(args, SerialEngine())
        finally:
            router_module.RouterHTTPServer.serve_forever = original
        assert code == 0
        assert list(captured["datasets"]) == ["staples"]
        assert captured["live"] == ["s0", "s1"]
        out = capsys.readouterr().out
        assert "shard router listening" in out
        assert "registered staples" in out


class TestSubmitCommand:
    @pytest.fixture
    def served(self):
        import threading

        from repro.datasets import staples_data as _staples
        from repro.service.core import AnalysisService
        from repro.service.http import make_server

        table = _staples(n_rows=600, seed=4)
        service = AnalysisService()
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        service.register(
            "staples", columns={name: table.column(name) for name in table.columns}
        )
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)

    def test_parser_accepts_submit_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["submit", "--url", "http://127.0.0.1:8000", "--json", "{}", "--wait"]
        )
        assert args.command == "submit"
        assert args.spec_json == "{}"
        assert args.wait

    def test_submit_and_wait_prints_the_result(self, served, capsys):
        import json

        spec = {
            "kind": "discover",
            "dataset": "staples",
            "treatment": "Income",
            "outcome": "Price",
            "test": "chi2",
        }
        code = main(["submit", "--url", served, "--wait", "--json", json.dumps(spec)])
        assert code == 0
        out = capsys.readouterr().out
        assert '"status": "accepted"' in out
        assert '"covariates"' in out  # the spliced discover result

    def test_submit_spec_from_file(self, served, tmp_path, capsys):
        import json

        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"kind": "query", "dataset": "staples",
                        "sql": "SELECT Income, avg(Price) FROM t GROUP BY Income"})
        )
        code = main(["submit", "--url", served, "--file", str(path)])
        assert code == 0
        assert '"job_id"' in capsys.readouterr().out

    def test_invalid_spec_json_is_a_usage_error(self, served, capsys):
        code = main(["submit", "--url", served, "--json", "not json"])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_server_rejection_is_exit_code_1(self, served, capsys):
        code = main(
            ["submit", "--url", served, "--json", '{"kind": "explode"}']
        )
        assert code == 1
        assert "unknown kind" in capsys.readouterr().err
