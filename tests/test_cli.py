"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import main
from repro.datasets import staples_data


@pytest.fixture
def staples_csv(tmp_path):
    table = staples_data(n_rows=4000, seed=4)
    path = tmp_path / "staples.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        writer.writerows(table.rows())
    return str(path)


class TestQueryCommand:
    def test_prints_group_averages(self, staples_csv, capsys):
        code = main(
            [
                "query",
                "--csv",
                staples_csv,
                "--sql",
                "SELECT Income, avg(Price) FROM t GROUP BY Income",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg(Price)" in out

    def test_bad_sql_reports_error(self, staples_csv, capsys):
        code = main(["query", "--csv", staples_csv, "--sql", "SELECT FROM"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_full_pipeline_with_known_sets(self, staples_csv, capsys):
        code = main(
            [
                "analyze",
                "--csv",
                staples_csv,
                "--sql",
                "SELECT Income, avg(Price) FROM t GROUP BY Income",
                "--covariates",
                "--mediators",
                "Distance",
                "--test",
                "chi2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Covariates (Z): []" in out
        assert "Mediators  (M): ['Distance']" in out
        assert "rewritten (direct)" in out

    def test_discovery_path(self, staples_csv, capsys):
        code = main(
            [
                "analyze",
                "--csv",
                staples_csv,
                "--sql",
                "SELECT Income, avg(Price) FROM t GROUP BY Income",
                "--test",
                "chi2",
                "--no-direct",
            ]
        )
        assert code == 0
        assert "Query:" in capsys.readouterr().out


class TestDiscoverCommand:
    def test_prints_covariates(self, staples_csv, capsys):
        code = main(
            [
                "discover",
                "--csv",
                staples_csv,
                "--treatment",
                "Income",
                "--outcome",
                "Price",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "covariates" in out
        assert "markov boundary" in out
