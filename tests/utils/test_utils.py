"""Unit tests for shared utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.borda import borda_aggregate, rank_by_value
from repro.utils.subsets import bounded_subsets, nonempty_subsets, powerset
from repro.utils.validation import (
    check_columns_exist,
    check_disjoint,
    check_fraction,
    check_positive,
    ensure_rng,
)


class TestSubsets:
    def test_powerset_counts(self):
        assert len(list(powerset("abc"))) == 8

    def test_powerset_includes_empty(self):
        assert () in list(powerset("ab"))

    def test_nonempty_excludes_empty(self):
        subsets = list(nonempty_subsets("ab"))
        assert () not in subsets
        assert len(subsets) == 3

    def test_bounded_respects_limit(self):
        subsets = list(bounded_subsets("abcd", 2))
        assert max(len(s) for s in subsets) == 2
        assert len(subsets) == 1 + 4 + 6

    def test_bounded_none_is_full_powerset(self):
        assert list(bounded_subsets("abc", None)) == list(powerset("abc"))

    def test_smallest_first_ordering(self):
        sizes = [len(s) for s in bounded_subsets("abcd", 3)]
        assert sizes == sorted(sizes)


class TestBorda:
    def test_rank_by_value_descending(self):
        assert rank_by_value({"a": 1.0, "b": 3.0, "c": 2.0}) == ["b", "c", "a"]

    def test_rank_by_value_ascending(self):
        assert rank_by_value({"a": 1.0, "b": 3.0}, descending=False) == ["a", "b"]

    def test_rank_ties_deterministic(self):
        assert rank_by_value({"b": 1.0, "a": 1.0}) == rank_by_value({"a": 1.0, "b": 1.0})

    def test_aggregate_single_ranking_identity(self):
        assert borda_aggregate([["x", "y", "z"]]) == ["x", "y", "z"]

    def test_aggregate_combines(self):
        merged = borda_aggregate([["a", "b", "c"], ["b", "a", "c"]])
        assert merged[2] == "c"
        assert set(merged[:2]) == {"a", "b"}

    def test_aggregate_consensus_winner(self):
        merged = borda_aggregate([["a", "b", "c"], ["a", "c", "b"], ["b", "a", "c"]])
        assert merged[0] == "a"

    def test_aggregate_empty(self):
        assert borda_aggregate([]) == []

    def test_aggregate_handles_missing_items(self):
        merged = borda_aggregate([["a", "b"], ["b", "c"]])
        assert set(merged) == {"a", "b", "c"}
        assert merged[0] == "b"


class TestValidation:
    def test_ensure_rng_from_seed(self):
        a = ensure_rng(5)
        b = ensure_rng(5)
        assert a.random() == b.random()

    def test_ensure_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="positive"):
            check_positive("x", 0)

    def test_check_fraction(self):
        check_fraction("f", 0.5)
        check_fraction("f", 0.0)
        check_fraction("f", 1.0)
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            check_fraction("f", 1.5)

    def test_check_columns_exist(self):
        check_columns_exist(["a", "b"], ["a"])
        with pytest.raises(KeyError, match="unknown column"):
            check_columns_exist(["a"], ["a", "z"])

    def test_check_disjoint(self):
        check_disjoint(first=["a"], second=["b"])
        with pytest.raises(ValueError, match="disjoint"):
            check_disjoint(first=["a", "b"], second=["b"])
