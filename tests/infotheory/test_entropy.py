"""Unit tests for entropy estimators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.infotheory.entropy import (
    entropy_from_counts,
    entropy_from_probabilities,
    miller_madow_entropy,
    plugin_entropy,
)


class TestEntropyFromProbabilities:
    def test_uniform(self):
        assert entropy_from_probabilities([0.5, 0.5]) == pytest.approx(math.log(2))

    def test_deterministic_is_zero(self):
        assert entropy_from_probabilities([1.0, 0.0]) == 0.0

    def test_zero_entries_ignored(self):
        assert entropy_from_probabilities([0.5, 0.5, 0.0]) == pytest.approx(math.log(2))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            entropy_from_probabilities([-0.1, 1.1])

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError, match="sum to 1"):
            entropy_from_probabilities([0.5, 0.2])


class TestPluginEntropy:
    def test_uniform_counts(self):
        assert plugin_entropy([10, 10]) == pytest.approx(math.log(2))

    def test_matches_probability_formula(self):
        counts = np.array([3, 5, 2])
        expected = entropy_from_probabilities(counts / counts.sum())
        assert plugin_entropy(counts) == pytest.approx(expected)

    def test_empty_counts(self):
        assert plugin_entropy([]) == 0.0
        assert plugin_entropy([0, 0]) == 0.0

    def test_single_category(self):
        assert plugin_entropy([42]) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            plugin_entropy([-1, 2])

    def test_accepts_iterables(self):
        assert plugin_entropy(iter([5, 5])) == pytest.approx(math.log(2))


class TestMillerMadow:
    def test_correction_added(self):
        counts = [10, 10]
        n = 20
        observed_cells = 2
        expected = plugin_entropy(counts) + (observed_cells - 1) / (2 * n)
        assert miller_madow_entropy(counts) == pytest.approx(expected)

    def test_zero_cells_not_counted(self):
        # [10, 10, 0] must give the same correction as [10, 10].
        assert miller_madow_entropy([10, 10, 0]) == pytest.approx(
            miller_madow_entropy([10, 10])
        )

    def test_correction_shrinks_with_n(self):
        small = miller_madow_entropy([5, 5]) - plugin_entropy([5, 5])
        large = miller_madow_entropy([500, 500]) - plugin_entropy([500, 500])
        assert small > large

    def test_empty(self):
        assert miller_madow_entropy([]) == 0.0

    def test_reduces_bias_on_average(self, rng):
        # The plug-in estimator underestimates; Miller-Madow should land
        # closer to the true entropy on average for small samples.
        p = np.array([0.5, 0.2, 0.2, 0.1])
        truth = entropy_from_probabilities(p)
        plugin_errors, mm_errors = [], []
        for _ in range(300):
            sample = rng.multinomial(30, p)
            plugin_errors.append(plugin_entropy(sample) - truth)
            mm_errors.append(miller_madow_entropy(sample) - truth)
        assert abs(np.mean(mm_errors)) < abs(np.mean(plugin_errors))


class TestDispatch:
    def test_dispatch_plugin(self):
        assert entropy_from_counts([1, 1], "plugin") == pytest.approx(math.log(2))

    def test_dispatch_miller_madow_default(self):
        assert entropy_from_counts([1, 1]) == miller_madow_entropy([1, 1])

    def test_unknown_estimator(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            entropy_from_counts([1], "bogus")
