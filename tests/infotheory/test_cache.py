"""Unit tests for the cached entropy engine."""

from __future__ import annotations

import math

import pytest

from repro.infotheory.cache import EntropyEngine
from repro.relation.table import Table


@pytest.fixture
def table() -> Table:
    return Table.from_columns(
        {
            "A": [0, 0, 1, 1, 0, 1, 0, 1],
            "B": [0, 1, 0, 1, 0, 1, 0, 1],
            "C": [0, 0, 0, 0, 1, 1, 1, 1],
        }
    )


class TestEntropy:
    def test_empty_set_is_zero(self, table):
        assert EntropyEngine(table).entropy(()) == 0.0

    def test_single_column(self, table):
        engine = EntropyEngine(table, estimator="plugin")
        assert engine.entropy(("A",)) == pytest.approx(math.log(2))

    def test_order_insensitive(self, table):
        engine = EntropyEngine(table)
        assert engine.entropy(("A", "B")) == engine.entropy(("B", "A"))

    def test_cache_hits_recorded(self, table):
        engine = EntropyEngine(table)
        engine.entropy(("A",))
        engine.entropy(("A",))
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1

    def test_cache_shared_across_engines_on_same_table(self, table):
        first = EntropyEngine(table)
        first.entropy(("A", "B"))
        second = EntropyEngine(table)
        second.entropy(("A", "B"))
        assert second.stats.cache_hits == 1
        assert second.stats.cache_misses == 0

    def test_caching_disabled(self, table):
        engine = EntropyEngine(table, caching=False)
        engine.entropy(("A",))
        engine.entropy(("A",))
        assert engine.stats.cache_hits == 0
        assert engine.cache_size() == 0

    def test_preload_and_clear(self, table):
        engine = EntropyEngine(table)
        engine.preload([("A",), ("B",), ("A", "B")])
        assert engine.cache_size() >= 3
        engine.clear_cache()
        assert engine.cache_size() == 0


class TestConditionalEntropy:
    def test_chain_rule(self, table):
        engine = EntropyEngine(table, estimator="plugin")
        joint = engine.entropy(("A", "C"))
        assert engine.conditional_entropy(("A",), ("C",)) == pytest.approx(
            joint - engine.entropy(("C",))
        )

    def test_self_conditioning_is_zero(self, table):
        engine = EntropyEngine(table, estimator="plugin")
        assert engine.conditional_entropy(("A",), ("A",)) == pytest.approx(0.0)


class TestMutualInformation:
    def test_identical_columns_full_information(self, table):
        copied = table.with_column("A2", table.column("A"))
        engine = EntropyEngine(copied, estimator="plugin")
        assert engine.mutual_information(("A",), ("A2",)) == pytest.approx(
            engine.entropy(("A",))
        )

    def test_independent_columns_near_zero(self, table):
        engine = EntropyEngine(table, estimator="plugin")
        # A and C are orthogonal by construction in this table.
        assert engine.mutual_information(("A",), ("C",)) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self, confounded_table):
        engine = EntropyEngine(confounded_table, estimator="plugin")
        assert engine.mutual_information(("T",), ("Y",)) == pytest.approx(
            engine.mutual_information(("Y",), ("T",))
        )

    def test_conditioning_reduces_confounded_mi(self, confounded_table):
        engine = EntropyEngine(confounded_table, estimator="plugin")
        marginal = engine.mutual_information(("T",), ("Y",))
        conditional = engine.mutual_information(("T",), ("Y",), ("Z",))
        assert marginal > conditional

    def test_overlap_rejected(self, table):
        engine = EntropyEngine(table)
        with pytest.raises(ValueError, match="overlaps"):
            engine.mutual_information(("A",), ("B",), ("A",))
        with pytest.raises(ValueError, match="disjoint"):
            engine.mutual_information(("A",), ("A",))
