"""Bitwise tests for the shared/ordered entropy routing (ROADMAP
"ordered-memo reach"): ``EntropyEngine.cmi_shared`` and the FD
pre-filter / explanation-ranking reroute built on it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.explain import coarse_grained_explanations
from repro.core.fd import LogicalDependencyFilter
from repro.infotheory.cache import EntropyEngine
from repro.relation.table import KERNEL_COUNTERS, Table


def _random_table(seed: int, n_rows: int = 400) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        {
            "A": rng.integers(0, 4, n_rows).tolist(),
            "B": rng.integers(0, 3, n_rows).tolist(),
            "C": rng.integers(0, 5, n_rows).tolist(),
            "D": (rng.integers(0, 4, n_rows) // 2).tolist(),
        }
    )


class TestCmiShared:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("z", [(), ("C",), ("C", "D")])
    def test_bitwise_equal_to_mutual_information(self, seed, z):
        # Fresh, equal-content tables so neither path sees the other's memo.
        legacy = EntropyEngine(_random_table(seed))
        routed = EntropyEngine(_random_table(seed))
        expected = legacy.mutual_information(("A",), ("B",), z)
        assert routed.cmi_shared("A", "B", z) == expected

    def test_set_keyed_entries_win(self):
        """A pre-existing frozenset entry is used verbatim (legacy behavior)."""
        table = _random_table(0)
        engine = EntropyEngine(table)
        expected = engine.mutual_information(("A",), ("B",), ("C",))
        # Same engine, same memo: the routed call must return the same
        # floats the set-keyed entries hold.
        assert engine.cmi_shared("A", "B", ("C",)) == expected

    def test_warm_call_touches_no_data(self):
        engine = EntropyEngine(_random_table(1))
        engine.cmi_shared("A", "B", ("C",))
        KERNEL_COUNTERS.reset()
        engine.cmi_shared("A", "B", ("C",))
        assert KERNEL_COUNTERS.total() == 0

    def test_cold_call_uses_one_grouped_pass(self):
        engine = EntropyEngine(_random_table(2))
        KERNEL_COUNTERS.reset()
        engine.cmi_shared("A", "B", ("C",))
        assert KERNEL_COUNTERS.grouped_passes == 1
        assert KERNEL_COUNTERS.joint_counts_scans == 0

    def test_seeds_both_key_kinds(self):
        """Routed entropies serve later set-keyed *and* ordered callers."""
        table = _random_table(3)
        engine = EntropyEngine(table)
        engine.cmi_shared("A", "B", ("C",))
        cache = table.entropy_cache("miller_madow")
        for key in [("A", "C"), ("B", "C"), ("A", "B", "C"), ("C",)]:
            assert key in cache
            assert frozenset(key) in cache
            assert cache[key] == cache[frozenset(key)]

    def test_ordered_entries_are_adopted_and_mirrored(self):
        """An ordered-only entry (e.g. merged back from a worker) is used
        and mirrored to the set key it would have been scanned into."""
        table = _random_table(4)
        reference = EntropyEngine(_random_table(4)).entropy(("A", "C"))
        cache = table.entropy_cache("miller_madow")
        cache[("A", "C")] = reference  # ordered-only, as a worker merge leaves it
        engine = EntropyEngine(table)
        engine.cmi_shared("A", "C")  # resolves H(A,C) from the ordered entry
        assert cache[frozenset(("A", "C"))] == reference


class TestFdPrefilterRouting:
    def test_filter_matches_legacy_scans(self):
        table = _random_table(5, n_rows=800)
        report = LogicalDependencyFilter(seed=0).filter(table, "A")
        # Legacy oracle: conditional entropies through plain scans on a
        # fresh equal-content table.
        oracle_table = _random_table(5, n_rows=800)
        engine = EntropyEngine(oracle_table, estimator="plugin")
        eps = 0.01
        expected_kept = [
            name
            for name in ("B", "C", "D")
            if not (
                engine.conditional_entropy((name,), ("A",)) <= eps
                and engine.conditional_entropy(("A",), (name,)) <= eps
            )
        ]
        # D duplicates nothing here and no attribute is key-like at this
        # size, so kept-vs-dropped is decided by the FD thresholds alone.
        assert [name for name in report.kept] == expected_kept

    def test_warm_table_filters_with_zero_passes(self):
        # Below 64 rows the key-likeness subsampling (the only RNG-driven,
        # unmemoizable stage) is skipped, so a warm table must answer the
        # whole filter from the memo.
        table = _random_table(6, n_rows=60)
        LogicalDependencyFilter(seed=0).filter(table, "A")
        KERNEL_COUNTERS.reset()
        LogicalDependencyFilter(seed=0).filter(table, "A")
        assert KERNEL_COUNTERS.total() == 0


class TestExplanationRouting:
    def test_coarse_explanations_match_legacy(self):
        table = _random_table(7)
        routed = coarse_grained_explanations(table, "A", ("B", "C"))
        # Legacy oracle on a fresh equal-content table.
        oracle = EntropyEngine(_random_table(7))
        total = oracle.mutual_information(("A",), ("B", "C"))
        drops = {
            "B": max(total - oracle.mutual_information(("A",), ("C",), ("B",)), 0.0),
            "C": max(total - oracle.mutual_information(("A",), ("B",), ("C",)), 0.0),
        }
        denominator = sum(drops.values())
        for item in routed:
            assert item.information_drop == drops[item.attribute]
            assert item.responsibility == drops[item.attribute] / denominator

    def test_single_variable_total_is_routed(self):
        table = _random_table(8)
        routed = coarse_grained_explanations(table, "A", ("B",))
        oracle = EntropyEngine(_random_table(8))
        assert routed[0].information_drop == max(
            oracle.mutual_information(("A",), ("B",)), 0.0
        )

    def test_warm_context_explains_with_zero_passes(self):
        table = _random_table(9)
        coarse_grained_explanations(table, "A", ("B", "C"))
        KERNEL_COUNTERS.reset()
        coarse_grained_explanations(table, "A", ("B", "C"))
        # The 3-way total I(A;BC) re-resolves from the set-keyed memo and
        # both 2-way conditionals from the ordered memo: zero data passes.
        assert KERNEL_COUNTERS.total() == 0
