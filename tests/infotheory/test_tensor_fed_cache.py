"""The tensor-fed entropy engine: absorb_grouped / cmi_grouped.

Contract: every entropy registered from one grouped-kernel pass is the
*identical float* a direct ``joint_counts`` scan in the same packed column
order produces -- for randomized tables, including ``z = ()`` and
selections whose domains carry unobserved values -- and routing discovery
through the shared ordered memo removes data passes without moving a
single output bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.causal.iamb import iamb_markov_blanket
from repro.core.discovery import CovariateDiscoverer
from repro.infotheory.cache import EntropyEngine
from repro.relation.table import KERNEL_COUNTERS, Table
from repro.stats.hybrid import HybridTest


def random_table(rng: np.random.Generator, n: int, n_cols: int = 4) -> Table:
    """Randomized categorical table; sometimes a selection, so domains can
    contain values no row carries (the unobserved-domain edge case)."""
    columns = {}
    for index in range(n_cols):
        cardinality = int(rng.integers(1, 7))
        values = rng.integers(0, cardinality, n)
        if rng.random() < 0.5:
            columns[f"c{index}"] = [f"v{value}" for value in values]
        else:
            columns[f"c{index}"] = values.tolist()
    table = Table.from_columns(columns)
    if n and rng.random() < 0.6:
        table = table.select(rng.random(n) < 0.7)
    return table


def random_case(rng: np.random.Generator):
    table = random_table(rng, int(rng.integers(1, 400)))
    names = list(table.columns)
    z = tuple(names[2 : 2 + int(rng.integers(0, 3))])
    return table, names[0], names[1], z


class TestAbsorbGrouped:
    @pytest.mark.parametrize("estimator", ["plugin", "miller_madow"])
    def test_absorbed_entropies_match_joint_counts_bitwise(self, estimator):
        rng = np.random.default_rng(31)
        checked = 0
        for _ in range(80):
            table, x, y, z = random_case(rng)
            if table.n_rows == 0:
                continue
            grouped = table.grouped_contingencies(x, y, z)
            if grouped is None:
                continue
            engine = EntropyEngine(table, estimator=estimator)
            added = engine.absorb_grouped(x, y, z, grouped)
            assert added == (4 if z else 3)
            # A scan-fed engine computes each entropy in the same packed
            # order; the absorbed values must match bit for bit.
            reference = EntropyEngine(
                Table({c: table.codes(c) for c in table.columns},
                      {c: table.domain(c) for c in table.columns}),
                estimator=estimator,
            )
            for key in [(x, *z), (y, *z), (x, y, *z)] + ([z] if z else []):
                cached = engine._cache[key]
                assert cached == reference._compute_entropy(key)  # bitwise
                checked += 1
        assert checked > 60  # the sweep actually exercised the kernel

    def test_absorb_skips_present_keys_and_uncached_engines(self, small_table):
        grouped = small_table.grouped_contingencies("T", "Y", ("Z",))
        engine = EntropyEngine(small_table, estimator="plugin")
        assert engine.absorb_grouped("T", "Y", ("Z",), grouped) == 4
        assert engine.absorb_grouped("T", "Y", ("Z",), grouped) == 0
        uncached = EntropyEngine(small_table, estimator="plugin", caching=False)
        assert uncached.absorb_grouped("T", "Y", ("Z",), grouped) == 0

    def test_empty_conditioning_set_registers_three(self, small_table):
        grouped = small_table.grouped_contingencies("T", "Y", ())
        engine = EntropyEngine(small_table, estimator="plugin")
        assert engine.absorb_grouped("T", "Y", (), grouped) == 3
        assert () not in engine._cache  # H(()) is exactly 0, never stored


class TestCmiGrouped:
    @pytest.mark.parametrize("estimator", ["plugin", "miller_madow"])
    def test_matches_mutual_information_bitwise(self, estimator):
        rng = np.random.default_rng(37)
        for _ in range(60):
            table, x, y, z = random_case(rng)
            if table.n_rows == 0:
                continue
            fed = EntropyEngine(table, estimator=estimator)
            value = fed.cmi_grouped(x, y, z)
            plain = EntropyEngine(table, estimator=estimator, caching=False)
            assert value == plain.mutual_information((x,), (y,), z)  # bitwise
            # A second call answers from the ordered memo, same float.
            assert fed.cmi_grouped(x, y, z) == value
            # And an engine that saw the values only through the cache
            # still produces the identical CMI.
            warm = EntropyEngine(table, estimator=estimator)
            assert warm.cmi_grouped(x, y, z) == value

    def test_declined_kernel_falls_back_to_scans(self, small_table):
        engine = EntropyEngine(small_table, estimator="plugin")
        via_scans = engine.cmi_grouped("T", "Y", ("Z",), grouped=None)
        plain = EntropyEngine(small_table, estimator="plugin", caching=False)
        assert via_scans == plain.mutual_information(("T",), ("Y",), ("Z",))
        assert engine.stats.grouped_answers == 0
        assert engine.stats.scan_answers > 0

    def test_single_missing_key_uses_one_scan_not_a_kernel_pass(self, small_table):
        engine = EntropyEngine(small_table, estimator="plugin")
        engine.cmi_grouped("T", "Y", ("Z",))
        # Remove one entry; refilling it must not re-run the kernel.
        del engine._cache[("Y", "Z")]
        KERNEL_COUNTERS.reset()
        engine.cmi_grouped("T", "Y", ("Z",))
        assert KERNEL_COUNTERS.grouped_passes == 0
        assert KERNEL_COUNTERS.joint_counts_scans == 1

    def test_ordered_keys_coexist_with_set_keys(self, small_table):
        engine = EntropyEngine(small_table, estimator="plugin")
        by_set = engine.entropy(("T", "Z"))
        engine.cmi_grouped("T", "Y", ("Z",))
        assert engine._cache[frozenset(("T", "Z"))] == by_set
        assert ("T", "Z") in engine._cache


class TestNGroupsMemo:
    def test_memoized_value_matches_scan(self):
        rng = np.random.default_rng(41)
        for _ in range(30):
            table, x, y, z = random_case(rng)
            expected = int(np.count_nonzero(table.joint_counts((x,))))
            assert table.n_groups((x,)) == expected
            assert table.n_groups_cached((x,)) == expected
            # Order-invariant key: any permutation answers from the memo.
            if z:
                forward = table.n_groups(z)
                assert table.n_groups(tuple(reversed(z))) == forward

    def test_kernel_pass_seeds_the_memo(self, small_table):
        assert small_table.n_groups_cached(("T",)) is None
        small_table.grouped_contingencies("T", "Y", ("Z",))
        KERNEL_COUNTERS.reset()
        assert small_table.n_groups(("T",)) == 2
        assert small_table.n_groups(("Y",)) == 2
        assert small_table.n_groups(("Z",)) == 2
        assert KERNEL_COUNTERS.joint_counts_scans == 0


class TestDiscoveryScanRegression:
    """Pin the tentpole claim: the tensor-fed memo removes data passes
    from discovery without changing a single reported number."""

    @pytest.fixture
    def workload(self, rng):
        n = 4000
        z = rng.integers(0, 3, n)
        w = rng.integers(0, 4, n)
        t = (rng.random(n) < 0.2 + 0.2 * (z % 2) + 0.1 * (w % 2)).astype(int)
        y = (rng.random(n) < 0.2 + 0.25 * (z % 3) + 0.2 * t).astype(int)
        return Table.from_columns(
            {"Z": z.tolist(), "W": w.tolist(), "T": t.tolist(), "Y": y.tolist()}
        )

    def _discover(self, table, share, seed=3):
        test = HybridTest(n_permutations=80, seed=seed, share_entropies=share)
        discoverer = CovariateDiscoverer(
            test, blanket_algorithm=iamb_markov_blanket, dependency_filter=None
        )
        KERNEL_COUNTERS.reset()
        result = discoverer.discover(table, "T", outcome="Y")
        passes = KERNEL_COUNTERS.total()
        scans = KERNEL_COUNTERS.joint_counts_scans
        return result, passes, scans

    def test_shared_memo_reduces_passes_identical_results(self, workload):
        shared, shared_passes, _ = self._discover(workload, share=True)
        baseline_table = workload.select(np.ones(workload.n_rows, dtype=bool))
        unshared, unshared_passes, _ = self._discover(baseline_table, share=False)
        assert shared.covariates == unshared.covariates
        assert shared.n_tests == unshared.n_tests
        assert shared_passes < unshared_passes

    def test_warm_table_discovery_is_nearly_scan_free(self, workload):
        first, cold_passes, _ = self._discover(workload, share=True, seed=3)
        second, warm_passes, warm_scans = self._discover(workload, share=True, seed=4)
        assert second.covariates == first.covariates
        # Chi2-routed tests answer entirely from the ordered memo; only
        # the Monte-Carlo branch still needs tensors for Patefield groups.
        assert warm_scans == 0
        assert warm_passes <= cold_passes / 2
