"""Unit tests for pointwise MI contributions (Def. 3.4)."""

from __future__ import annotations

import pytest

from repro.infotheory.cache import EntropyEngine
from repro.infotheory.contributions import contribution_table, pointwise_contribution
from repro.relation.table import Table


class TestPointwiseContribution:
    def test_independent_cell_is_zero(self):
        assert pointwise_contribution(0.25, 0.5, 0.5) == pytest.approx(0.0)

    def test_positive_association(self):
        assert pointwise_contribution(0.4, 0.5, 0.5) > 0

    def test_negative_association(self):
        assert pointwise_contribution(0.1, 0.5, 0.5) < 0

    def test_zero_joint_is_zero(self):
        assert pointwise_contribution(0.0, 0.5, 0.5) == 0.0

    def test_inconsistent_marginals_rejected(self):
        with pytest.raises(ValueError, match="positive marginals"):
            pointwise_contribution(0.2, 0.0, 0.5)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            pointwise_contribution(-0.1, 0.5, 0.5)


class TestContributionTable:
    def test_sums_to_plugin_mi(self, confounded_table):
        contributions = contribution_table(confounded_table, "T", "Y")
        engine = EntropyEngine(confounded_table, estimator="plugin")
        assert sum(contributions.values()) == pytest.approx(
            engine.mutual_information(("T",), ("Y",)), abs=1e-10
        )

    def test_keys_are_observed_pairs(self, small_table):
        contributions = contribution_table(small_table, "T", "Y")
        observed = set(small_table.value_counts(["T", "Y"]))
        assert set(contributions) == observed

    def test_empty_table(self):
        table = Table.from_columns({"A": [], "B": []})
        assert contribution_table(table, "A", "B") == {}

    def test_perfect_correlation_all_positive(self):
        table = Table.from_columns({"A": [0, 0, 1, 1], "B": [0, 0, 1, 1]})
        contributions = contribution_table(table, "A", "B")
        assert all(value > 0 for value in contributions.values())

    def test_confounder_sign_structure(self, confounded_table):
        # High Z co-occurs with T=1 and Y=1: the (1, 2) cell of (T, Z)
        # contributes positively.
        contributions = contribution_table(confounded_table, "T", "Z")
        assert contributions[(1, 2)] > 0
        assert contributions[(1, 0)] < 0
