"""Engine pin/unpin: deferred grouped releases and plane work sharing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ParallelEngine, SerialEngine
from repro.engine import dataplane
from repro.engine.dataplane import PLANE_STATS
from repro.relation.table import Table


@pytest.fixture
def table():
    rng = np.random.default_rng(0)
    return Table.from_columns(
        {
            "X": rng.integers(0, 4, 500).tolist(),
            "Y": rng.integers(0, 3, 500).tolist(),
            "Z": rng.integers(0, 5, 500).tolist(),
        }
    )


def test_serial_pin_is_the_identity(table):
    engine = SerialEngine()
    handle = engine.pin(table)
    assert handle is table
    engine.unpin(handle)  # no-op, must not raise


def test_pin_defers_grouped_releases_until_unpin(table):
    grouped = table.grouped_contingencies("X", "Y", ("Z",))
    engine = ParallelEngine(jobs=2)
    try:
        pin = engine.pin(table)
        if not isinstance(pin, dataplane.TableRef):
            pytest.skip("shared memory unavailable; nothing to pin")
        ref = engine.publish_grouped(table, ("X", "Y", "Z"), grouped)
        if ref is None:
            pytest.skip("grouped shm transport unavailable")
        PLANE_STATS.reset()
        engine.release_grouped(ref)
        # Deferred: the tensor is still resident, so a republication is a
        # refcount hit, not a new segment.
        again = engine.publish_grouped(table, ("X", "Y", "Z"), grouped)
        assert again == ref
        assert PLANE_STATS.grouped_republications == 1
        assert PLANE_STATS.grouped_segments == 0
        engine.release_grouped(again)

        engine.unpin(pin)
        # The pin is gone: the deferred releases flushed, the tensor left
        # the plane, and the next publication creates a fresh entry.
        PLANE_STATS.reset()
        fresh = engine.publish_grouped(table, ("X", "Y", "Z"), grouped)
        assert fresh is not None
        assert PLANE_STATS.grouped_publications == 1
        engine.release_grouped(fresh)
    finally:
        engine.close()


def test_unpinned_grouped_release_is_immediate(table):
    grouped = table.grouped_contingencies("X", "Y", ("Z",))
    engine = ParallelEngine(jobs=2)
    try:
        ref = engine.publish_grouped(table, ("X", "Y", "Z"), grouped)
        if ref is None:
            pytest.skip("grouped shm transport unavailable")
        engine.release_grouped(ref)
        PLANE_STATS.reset()
        again = engine.publish_grouped(table, ("X", "Y", "Z"), grouped)
        assert PLANE_STATS.grouped_publications == 1  # not a refcount hit
        engine.release_grouped(again)
    finally:
        engine.close()


def test_nested_pins_flush_on_the_last_unpin(table):
    engine = ParallelEngine(jobs=2)
    try:
        outer = engine.pin(table)
        if not isinstance(outer, dataplane.TableRef):
            pytest.skip("shared memory unavailable; nothing to pin")
        inner = engine.pin(table)
        grouped = table.grouped_contingencies("X", "Y", ())
        ref = engine.publish_grouped(table, ("X", "Y"), grouped)
        if ref is not None:
            engine.release_grouped(ref)
        engine.unpin(inner)
        if ref is not None:
            # Still pinned by the outer handle: the tensor stays resident.
            PLANE_STATS.reset()
            engine.publish_grouped(table, ("X", "Y"), grouped)
            assert PLANE_STATS.grouped_republications == 1
            engine.release_grouped(ref)
        engine.unpin(outer)
        assert engine._pinned == {}
        assert engine._deferred_grouped == {}
    finally:
        engine.close()


def test_close_releases_deferred_publications(table):
    engine = ParallelEngine(jobs=2)
    pin = engine.pin(table)
    grouped = table.grouped_contingencies("X", "Y", ("Z",))
    ref = engine.publish_grouped(table, ("X", "Y", "Z"), grouped)
    if ref is not None:
        engine.release_grouped(ref)  # deferred while pinned
    engine.close()
    # Everything the engine ever published -- including the deferred
    # releases -- is off the plane after close.
    assert engine._published == {}
    assert engine._published_grouped == {}
    assert engine._deferred_grouped == {}
    if isinstance(pin, dataplane.TableRef):
        with pytest.raises(RuntimeError):
            # Parent registry entry is gone; resolving the stale ref in a
            # process that never attached it must fail loudly.
            dataplane._registry.tables.pop(pin.fingerprint, None)
            dataplane.resolve_table(
                dataplane.TableRef(
                    fingerprint=pin.fingerprint,
                    n_rows=table.n_rows,
                    n_cols=3,
                    segment=None,
                    schema_bytes=0,
                )
            )
