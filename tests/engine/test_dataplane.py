"""The dataset plane: worker-resident tables, O(1) task payloads, cleanup.

Pins the tentpole contracts: published tables resolve to the identical
instance in the parent, to shared-memory views in workers; task payloads
shrink from O(table) to O(1); segments are reference-counted and unlinked
on release/close (no resource-tracker noise); and analysis results routed
through the plane stay byte-identical across engines and worker counts.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.hypdb import HypDB
from repro.core.report import canonical_json_bytes
from repro.datasets.flights import flight_data
from repro.engine import ParallelEngine, SerialEngine, TableRef, resolve_table
from repro.engine import dataplane
from repro.relation.table import Table

FLIGHTS_SQL = (
    "SELECT Carrier, avg(Delayed) FROM FlightData "
    "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
    "GROUP BY Carrier"
)


@pytest.fixture
def table() -> Table:
    n = 3000
    return Table.from_columns(
        {
            "A": [i % 5 for i in range(n)],
            "B": [i % 3 for i in range(n)],
            "K": list(range(n)),  # key-like: the domain is as big as the data
        }
    )


def _sum_codes_task(handle):
    resolved = resolve_table(handle)
    return int(resolved.codes("A").sum())


def _identity_task(handle):
    return id(resolve_table(handle))


class TestPublishResolve:
    def test_parent_resolves_to_same_instance(self, table):
        engine = ParallelEngine(jobs=2)
        try:
            ref = engine.publish(table)
            assert isinstance(ref, TableRef)
            assert resolve_table(ref) is table
        finally:
            engine.close()

    def test_ref_pickles_o1_even_for_key_columns(self, table):
        engine = ParallelEngine(jobs=2)
        try:
            ref = engine.publish(table)
            assert len(pickle.dumps(ref)) < len(pickle.dumps(table)) / 10
            assert len(pickle.dumps(ref)) < 1024
        finally:
            engine.close()

    def test_workers_resolve_correct_content(self, table):
        expected = int(table.codes("A").sum())
        engine = ParallelEngine(jobs=2)
        try:
            ref = engine.publish(table)
            assert engine.map(_sum_codes_task, [ref] * 6) == [expected] * 6
        finally:
            engine.close()

    def test_worker_keeps_table_resident_across_tasks(self, table):
        engine = ParallelEngine(jobs=1, min_tasks=0)
        # jobs=1 runs inline: both tasks resolve the parent's instance.
        try:
            ref = engine.publish(table)
            first, second = engine.map(_identity_task, [ref, ref])
            assert first == second == id(table)
        finally:
            engine.close()

    def test_publish_is_content_deduplicated(self, table):
        engine = ParallelEngine(jobs=2)
        try:
            ref = engine.publish(table)
            again = engine.publish(table)
            assert again is ref
            copy = Table.from_columns({name: table.column(name) for name in table.columns})
            assert engine.publish(copy) is ref  # equal content, one segment
        finally:
            engine.close()

    def test_serial_engine_publish_is_identity(self, table):
        engine = SerialEngine()
        assert engine.publish(table) is table
        assert resolve_table(table) is table
        engine.release(table)

    def test_empty_table_stays_inline(self):
        empty = Table.from_columns({"A": []})
        engine = ParallelEngine(jobs=2)
        try:
            assert engine.publish(empty) is empty
            assert engine.publish(None) is None
        finally:
            engine.close()


class TestCleanup:
    def test_release_unlinks_at_zero_references(self, table):
        from multiprocessing import shared_memory

        engine = ParallelEngine(jobs=2)
        ref = engine.publish(table)
        engine.publish(table)  # second reference
        engine.release(ref)
        shared_memory.SharedMemory(name=ref.segment).close()  # still alive
        engine.release(ref)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.segment)
        engine.close()

    def test_close_releases_unreleased_publications(self, table):
        from multiprocessing import shared_memory

        engine = ParallelEngine(jobs=2)
        ref = engine.publish(table)
        engine.map(_sum_codes_task, [ref] * 4)
        engine.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.segment)

    def test_no_resource_tracker_warnings(self):
        """A full publish/map/close cycle leaves no leaked-segment noise.

        The pool is deliberately warmed *before* the first publication:
        workers forked ahead of any segment have no inherited resource
        tracker, so an attach that registers with the tracker would spawn
        one per worker and emit leaked-segment warnings at worker exit
        (the cpython gh-82300 hazard the untracked attach avoids).
        """
        script = (
            "from repro.engine import ParallelEngine, resolve_table\n"
            "from repro.relation.table import Table\n"
            "from tests.engine.test_dataplane import _sum_codes_task\n"
            "table = Table.from_columns({'A': [i % 4 for i in range(2000)],"
            " 'B': [i % 3 for i in range(2000)], 'K': list(range(2000))})\n"
            "engine = ParallelEngine(jobs=2, min_tasks=1)\n"
            "engine.map(len, [[1], [2]])  # fork workers pre-publication\n"
            "ref = engine.publish(table)\n"
            "print(engine.map(_sum_codes_task, [ref] * 4))\n"
            "engine.close()\n"
        )
        repo = Path(__file__).resolve().parents[2]
        environment = dict(os.environ)
        environment["PYTHONPATH"] = f"{repo / 'src'}:{repo}"
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=repo,
            env=environment,
        )
        assert completed.returncode == 0, completed.stderr
        assert "resource_tracker" not in completed.stderr, completed.stderr
        assert "leaked" not in completed.stderr, completed.stderr


class TestWorkerCacheBound:
    def test_attach_cache_evicts_past_limit(self):
        """Attach-resolved residents stay bounded (long-lived services
        stream many distinct tables through the same workers)."""
        refs = []
        engine = ParallelEngine(jobs=2)
        try:
            for index in range(dataplane.WORKER_CACHE_LIMIT + 3):
                table = Table.from_columns({"A": [index] * 50 + [0] * 50})
                refs.append(engine.publish(table))
            # Simulate a worker: resolve every ref via fresh attaches by
            # clearing the parent-registry hit path.
            saved = dict(dataplane._registry.tables)
            dataplane._registry.tables.clear()
            try:
                for ref in refs:
                    resolve_table(ref)
                assert (
                    len(dataplane._registry.attached) <= dataplane.WORKER_CACHE_LIMIT
                )
            finally:
                dataplane._registry.tables.update(saved)
        finally:
            engine.close()


class TestFallbackTransport:
    def test_registry_only_publication_restarts_pool(self, table, monkeypatch):
        """Without shared memory the data still travels once per pool."""
        monkeypatch.setattr(dataplane, "_create_segment", lambda *a: (None, 0))
        engine = ParallelEngine(jobs=2)
        try:
            expected = int(table.codes("A").sum())
            before = dataplane.fallback_generation()
            ref = engine.publish(table)
            assert ref.segment is None
            assert dataplane.fallback_generation() == before + 1
            # Fork-inherited registry: workers spawned after publication
            # see the table without any per-task payload.
            assert engine.map(_sum_codes_task, [ref] * 4) == [expected] * 4
        finally:
            engine.close()

    def test_fallback_payload_round_trip(self, table, monkeypatch):
        monkeypatch.setattr(dataplane, "_create_segment", lambda *a: (None, 0))
        engine = ParallelEngine(jobs=2)
        try:
            ref = engine.publish(table)
            payload = dataplane.fallback_payload()
            assert payload is not None
            fingerprints = set(pickle.loads(payload))
            assert ref.fingerprint in fingerprints
        finally:
            engine.close()


@pytest.mark.slow
class TestByteIdenticalThroughPlane:
    """Acceptance pin: reports through the shared-memory transport are
    byte-for-byte the serial reports, at any worker count."""

    def test_flights_canonical_bytes_jobs1_vs_jobs4(self):
        def payload(engine):
            report = HypDB(flight_data(n_rows=8000, seed=7), seed=7, engine=engine).analyze(
                FLIGHTS_SQL
            )
            return canonical_json_bytes(report.to_dict())

        with ParallelEngine(jobs=4) as parallel:
            assert payload(SerialEngine()) == payload(parallel)
