"""Engine determinism: jobs=1 and jobs=4 must produce identical results.

The library-wide contract (see :mod:`repro.engine.base`) is that task
lists and seeds are built before scheduling, so the worker count can never
change a p-value, a discovered covariate set, or a report.  These tests
pin that contract at every layer the engine touches.
"""

from __future__ import annotations

import pytest

from repro.core.discovery import CovariateDiscoverer
from repro.core.hypdb import HypDB
from repro.datasets.flights import flight_data
from repro.datasets.random_data import random_dataset
from repro.engine import ParallelEngine, SerialEngine
from repro.relation.cube import DataCube
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.hybrid import HybridTest
from repro.stats.permutation import PermutationTest

FLIGHTS_SQL = (
    "SELECT Carrier, avg(Delayed) FROM FlightData "
    "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
    "GROUP BY Carrier"
)


@pytest.fixture(scope="module")
def parallel_engine():
    with ParallelEngine(jobs=4) as engine:
        yield engine


@pytest.fixture(scope="module")
def dataset():
    return random_dataset(
        n_nodes=5, n_rows=4000, categories=3, expected_parents=1.5, strength=6.0, seed=11
    )


class TestPermutationDeterminism:
    def test_identical_p_values_across_engines(self, dataset, parallel_engine):
        nodes = dataset.nodes
        args = (dataset.table, nodes[0], nodes[1], (nodes[2],))
        serial = PermutationTest(n_permutations=300, seed=5, engine=SerialEngine()).test(*args)
        parallel = PermutationTest(n_permutations=300, seed=5, engine=parallel_engine).test(*args)
        assert serial.p_value == parallel.p_value
        assert serial.statistic == parallel.statistic
        assert serial.p_interval == parallel.p_interval

    def test_engine_batching_invariant(self, dataset):
        """Engine chunk_size batches whole tasks; it can never change p-values."""
        nodes = dataset.nodes
        args = (dataset.table, nodes[0], nodes[1], (nodes[2],))
        reference = PermutationTest(n_permutations=300, seed=5).test(*args)
        for chunk_size in (1, 3, 1000):
            with ParallelEngine(jobs=2, chunk_size=chunk_size) as engine:
                result = PermutationTest(
                    n_permutations=300, seed=5, engine=engine
                ).test(*args)
            assert result.p_value == reference.p_value
            assert result.p_interval == reference.p_interval

    def test_consecutive_calls_draw_fresh_replicates(self, dataset):
        """The fan-out must not reset the stream between test calls."""
        nodes = dataset.nodes
        test = PermutationTest(n_permutations=100, seed=5)
        state_before = test._rng.bit_generator.state
        first = test.test(dataset.table, nodes[0], nodes[1])
        state_between = test._rng.bit_generator.state
        second = test.test(dataset.table, nodes[0], nodes[1])
        # Each call consumes parent entropy, so the stream advances and the
        # second call's replicates are fresh, not a replay of the first.
        assert state_before != state_between
        assert state_between != test._rng.bit_generator.state
        # Same observed statistic either way; and a fresh instance with the
        # same seed replays the first call exactly.
        assert first.statistic == second.statistic
        replay = PermutationTest(n_permutations=100, seed=5).test(
            dataset.table, nodes[0], nodes[1]
        )
        assert replay.p_value == first.p_value
        assert replay.p_interval == first.p_interval

    def test_hybrid_routes_identically(self, dataset, parallel_engine):
        nodes = dataset.nodes
        args = (dataset.table, nodes[0], nodes[1], (nodes[2], nodes[3]))
        serial = HybridTest(n_permutations=200, seed=3, engine=SerialEngine()).test(*args)
        parallel = HybridTest(n_permutations=200, seed=3, engine=parallel_engine).test(*args)
        assert serial.p_value == parallel.p_value
        assert serial.method == parallel.method


class TestDiscoveryDeterminism:
    def test_identical_covariates_across_engines(self, dataset, parallel_engine):
        table = dataset.table
        treatment = dataset.nodes[0]
        serial = CovariateDiscoverer(ChiSquaredTest(), engine=SerialEngine()).discover(
            table, treatment
        )
        parallel = CovariateDiscoverer(ChiSquaredTest(), engine=parallel_engine).discover(
            table, treatment
        )
        assert serial.covariates == parallel.covariates
        assert serial.markov_boundary == parallel.markov_boundary
        assert serial.boundaries == parallel.boundaries
        assert serial.n_tests == parallel.n_tests


class TestCubeDeterminism:
    def test_identical_cuboids_across_engines(self, dataset, parallel_engine):
        attributes = dataset.nodes[:5]
        serial = DataCube(dataset.table, attributes)
        parallel = DataCube(dataset.table, attributes, engine=parallel_engine)
        assert serial.n_cuboids() == parallel.n_cuboids()
        assert serial._cuboids == parallel._cuboids


@pytest.mark.slow
class TestHypDBDeterminism:
    """The acceptance bar: byte-identical flights reports, jobs=1 vs jobs=4."""

    def test_flights_quickstart_byte_identical(self, parallel_engine):
        def report(engine):
            table = flight_data(n_rows=20000, seed=7)
            return HypDB(table, seed=7, engine=engine).analyze(FLIGHTS_SQL)

        serial = report(SerialEngine())
        parallel = report(parallel_engine)
        assert serial.format() == parallel.format()
        assert serial.covariates == parallel.covariates
        assert serial.mediators == parallel.mediators
        for left, right in zip(serial.contexts, parallel.contexts):
            if left.balance_total is not None:
                assert left.balance_total.p_value == right.balance_total.p_value
            if left.balance_direct is not None:
                assert left.balance_direct.p_value == right.balance_direct.p_value
            assert left.coarse == right.coarse

    def test_counters_match_across_engines(self, parallel_engine):
        def run(engine):
            table = flight_data(n_rows=8000, seed=7)
            db = HypDB(table, seed=7, engine=engine)
            db.analyze(FLIGHTS_SQL)
            return db.test.counters()

        assert run(SerialEngine()) == run(parallel_engine)
