"""Worker-safety of shared state: entropy caches, test clones, pickling."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.engine import ParallelEngine, SerialEngine, spawn_seeds
from repro.infotheory.cache import EntropyEngine
from repro.relation.table import Table
from repro.stats.chi2 import ChiSquaredTest
from repro.stats.hybrid import HybridTest
from repro.stats.permutation import PermutationTest


@pytest.fixture
def table(rng: np.random.Generator) -> Table:
    n = 500
    return Table.from_columns(
        {
            "A": rng.integers(0, 3, n).tolist(),
            "B": rng.integers(0, 2, n).tolist(),
            "C": rng.integers(0, 4, n).tolist(),
        }
    )


def _entropy_task(task):
    """Worker-side: compute entropies and export the populated cache."""
    worker_table, column_sets = task
    engine = EntropyEngine(worker_table, estimator="plugin")
    engine.preload(column_sets)
    return worker_table.export_entropy_caches()


class TestTableCaches:
    def test_caches_travel_with_pickle(self, table):
        table.entropy_cache("plugin")[frozenset({"A"})] = 1.5
        clone = pickle.loads(pickle.dumps(table))
        assert clone.entropy_cache("plugin")[frozenset({"A"})] == 1.5

    def test_export_is_a_snapshot(self, table):
        table.entropy_cache("plugin")[frozenset({"A"})] = 1.5
        exported = table.export_entropy_caches()
        table.entropy_cache("plugin")[frozenset({"B"})] = 2.5
        assert frozenset({"B"}) not in exported["plugin"]

    def test_merge_brings_worker_entries_home(self, table):
        exported = {"plugin": {frozenset({"A", "B"}): 0.7}}
        table.merge_entropy_caches(exported)
        assert table.entropy_cache("plugin")[frozenset({"A", "B"})] == 0.7

    def test_merge_is_idempotent(self, table):
        exported = {"plugin": {frozenset({"A"}): 0.1}}
        table.merge_entropy_caches(exported)
        table.merge_entropy_caches(exported)
        assert table.entropy_cache("plugin") == {frozenset({"A"}): 0.1}

    def test_self_merge_is_safe(self, table):
        table.entropy_cache("plugin")[frozenset({"A"})] = 1.0
        table.merge_entropy_caches(table.export_entropy_caches())
        assert table.entropy_cache("plugin") == {frozenset({"A"}): 1.0}

    def test_no_cache_loss_across_process_fanout(self, table):
        """Entries computed in workers land in the parent cache (no loss)."""
        column_sets = [("A",), ("B",), ("A", "B"), ("A", "C")]
        tasks = [(table, [columns]) for columns in column_sets]
        with ParallelEngine(jobs=2) as engine:
            for caches in engine.map(_entropy_task, tasks):
                table.merge_entropy_caches(caches)
        cache = table.entropy_cache("plugin")
        for columns in column_sets:
            assert frozenset(columns) in cache

    def test_parent_and_worker_values_agree(self, table):
        local = EntropyEngine(table, estimator="plugin")
        expected = local.entropy(("A", "B"))
        (caches,) = SerialEngine().map(_entropy_task, [(pickle.loads(pickle.dumps(table)), [("A", "B")])])
        assert caches["plugin"][frozenset({"A", "B"})] == pytest.approx(expected)


class TestEntropyEngineCache:
    def test_export_and_merge(self, table):
        first = EntropyEngine(table, estimator="plugin", caching=True)
        first.entropy(("A",))
        second = EntropyEngine(table, estimator="plugin", caching=False)
        second.merge_cache(first.export_cache())
        assert second.cache_size() >= 1


class TestWorkerClones:
    def test_spawn_worker_is_independent(self, table):
        parent = PermutationTest(n_permutations=50, seed=1)
        seeds = spawn_seeds(parent.draw_entropy(), 2)
        clone_a = parent.spawn_worker(seeds[0], engine=SerialEngine())
        clone_b = parent.spawn_worker(seeds[1], engine=SerialEngine())
        clone_a.test(table, "A", "B")
        assert clone_a.calls == 1
        assert clone_b.calls == 0
        assert parent.calls == 0

    def test_spawn_worker_downgrades_engine(self, table):
        with ParallelEngine(jobs=2) as engine:
            parent = PermutationTest(n_permutations=50, seed=1, engine=engine)
            clone = parent.spawn_worker(spawn_seeds(0, 1)[0], engine=SerialEngine())
        assert isinstance(clone.engine, SerialEngine)
        assert isinstance(parent.engine, ParallelEngine)

    def test_clone_with_parallel_engine_pickles(self, table):
        with ParallelEngine(jobs=2) as engine:
            engine.map(len, [[1], [2]])  # start the pool
            parent = PermutationTest(n_permutations=50, seed=1, engine=engine)
            clone = pickle.loads(pickle.dumps(parent))
        assert clone.engine.jobs == 2

    def test_counter_absorption(self, table):
        parent = HybridTest(n_permutations=50, seed=0)
        clone = parent.spawn_worker(spawn_seeds(3, 1)[0], engine=SerialEngine())
        clone.test(table, "A", "B")
        clone.test(table, "A", "C", ("B",))
        parent.absorb_counters(clone.counters())
        assert parent.calls == 2
        assert parent.chi2_calls + parent.mit_calls == 2

    def test_chi2_clone_is_deterministic(self, table):
        parent = ChiSquaredTest()
        clone = parent.spawn_worker(spawn_seeds(9, 1)[0])
        assert clone.test(table, "A", "B").p_value == parent.test(table, "A", "B").p_value
