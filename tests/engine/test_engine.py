"""Unit tests for the execution-engine subsystem."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.engine import (
    ExecutionEngine,
    ParallelEngine,
    SerialEngine,
    chunked,
    default_chunk_size,
    draw_entropy,
    resolve_engine,
    spawn_seeds,
)


def square(x: int) -> int:
    return x * x


def seeded_draw(seed) -> int:
    return int(np.random.default_rng(seed).integers(1_000_000))


class TestSerialEngine:
    def test_maps_in_order(self):
        assert SerialEngine().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_tasks(self):
        assert SerialEngine().map(square, []) == []

    def test_jobs_is_one(self):
        assert SerialEngine().jobs == 1


class TestParallelEngine:
    def test_maps_in_order(self):
        with ParallelEngine(jobs=3) as engine:
            assert engine.map(square, list(range(20))) == [x * x for x in range(20)]

    def test_empty_tasks(self):
        with ParallelEngine(jobs=2) as engine:
            assert engine.map(square, []) == []

    def test_fewer_tasks_than_workers(self):
        with ParallelEngine(jobs=8) as engine:
            assert engine.map(square, [5, 6, 7]) == [25, 36, 49]

    def test_single_task_runs_inline(self):
        engine = ParallelEngine(jobs=4)
        assert engine.map(square, [9]) == [81]
        assert engine._pool is None  # below min_tasks: no pool was started
        engine.close()

    def test_chunk_size_does_not_change_results(self):
        tasks = list(range(17))
        expected = [x * x for x in tasks]
        with ParallelEngine(jobs=2) as engine:
            for chunk in (1, 3, 17, 100):
                assert engine.map(square, tasks, chunk_size=chunk) == expected

    def test_default_jobs_positive(self):
        assert ParallelEngine().jobs >= 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelEngine(jobs=0)

    def test_pickle_drops_pool(self):
        with ParallelEngine(jobs=2, chunk_size=5) as engine:
            engine.map(square, list(range(10)))
            clone = pickle.loads(pickle.dumps(engine))
        assert clone.jobs == 2
        assert clone._pool is None
        assert clone._chunk_size == 5

    def test_close_is_idempotent_and_reusable(self):
        engine = ParallelEngine(jobs=2)
        assert engine.map(square, list(range(4))) == [0, 1, 4, 9]
        engine.close()
        engine.close()
        assert engine.map(square, list(range(4))) == [0, 1, 4, 9]
        engine.close()

    def test_worker_seeds_are_deterministic(self):
        seeds = spawn_seeds(1234, 6)
        serial = SerialEngine().map(seeded_draw, seeds)
        with ParallelEngine(jobs=3) as engine:
            parallel = engine.map(seeded_draw, seeds)
        assert serial == parallel


class TestResolveEngine:
    def test_none_is_serial(self):
        assert isinstance(resolve_engine(None), SerialEngine)

    def test_small_job_counts_are_serial(self):
        assert isinstance(resolve_engine(1), SerialEngine)
        assert isinstance(resolve_engine(0), SerialEngine)

    def test_job_count_builds_parallel(self):
        engine = resolve_engine(4)
        assert isinstance(engine, ParallelEngine)
        assert engine.jobs == 4

    def test_instance_passes_through(self):
        engine = SerialEngine()
        assert resolve_engine(engine) is engine

    def test_bool_and_junk_rejected(self):
        with pytest.raises(TypeError):
            resolve_engine(True)
        with pytest.raises(TypeError):
            resolve_engine("4")


class TestHelpers:
    def test_chunked_covers_all_items(self):
        batches = chunked(list(range(10)), 3)
        assert batches == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_chunked_rejects_bad_size(self):
        with pytest.raises(ValueError, match="chunk size"):
            chunked([1], 0)

    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(1, 4) == 1
        assert default_chunk_size(1000, 4) >= 1

    def test_spawn_seeds_independent_streams(self):
        seeds = spawn_seeds(7, 4)
        draws = {seeded_draw(seed) for seed in seeds}
        assert len(draws) == 4  # distinct streams

    def test_spawn_seeds_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(7, -1)

    def test_draw_entropy_advances_parent(self):
        rng = np.random.default_rng(0)
        assert draw_entropy(rng) != draw_entropy(rng)

    def test_base_engine_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ExecutionEngine().map(square, [1])
