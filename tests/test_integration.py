"""End-to-end integration tests: the paper's five evaluation scenarios.

These check the *shape* of the paper's findings (who wins, what is
significant, what explains the bias), not the exact numbers, using fast
configurations of each dataset.
"""

from __future__ import annotations

import pytest

from repro.core.hypdb import HypDB
from repro.datasets import (
    adult_data,
    berkeley_data,
    cancer_data,
    flight_data,
    staples_data,
)

ALPHA = 0.01


@pytest.fixture(scope="module")
def flight_report():
    table = flight_data(n_rows=30000, seed=7)
    db = HypDB(table, seed=7)
    return db.analyze(
        "SELECT Carrier, avg(Delayed) FROM FlightData "
        "WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') "
        "GROUP BY Carrier"
    )


class TestFlightScenario:
    """Paper Fig. 1: Simpson's paradox on FlightData."""

    def test_query_flagged_biased(self, flight_report):
        assert flight_report.biased

    def test_airport_discovered_as_covariate(self, flight_report):
        assert "Airport" in flight_report.covariates

    def test_fd_and_key_attributes_dropped(self, flight_report):
        dropped = flight_report.covariate_discovery.dependency_report.dropped
        assert "CarrierName" in dropped
        assert "FlightID" in dropped
        assert not set(flight_report.covariates) & {"AirportWAC", "TailNum"}

    def test_naive_favors_aa_rewrite_reverses(self, flight_report):
        context = flight_report.contexts[0]
        assert context.naive.average("AA") < context.naive.average("UA")
        assert context.naive.p_value() < ALPHA
        # Total effect: UA is actually (slightly) better.
        assert context.total.difference() < 0
        assert context.total.p_value() < ALPHA

    def test_direct_effect_insignificant(self, flight_report):
        context = flight_report.contexts[0]
        assert context.direct.p_value() >= ALPHA

    def test_airport_top_explanation(self, flight_report):
        coarse = flight_report.contexts[0].coarse
        assert coarse[0].attribute == "Airport"

    def test_fine_grained_matches_paper_top_pattern(self, flight_report):
        """Paper Fig. 1(d): rank-1 is (UA, ROC, Delayed=1)."""
        triples = flight_report.contexts[0].fine["Airport"]
        top = triples[0]
        assert top.treatment_value == "UA"
        assert top.attribute_value == "ROC"
        assert top.outcome_value == 1


@pytest.fixture(scope="module")
def berkeley_report():
    return HypDB(berkeley_data(), seed=1).analyze(
        "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender"
    )


class TestBerkeleyScenario:
    """Paper Fig. 4 top: 1973 admissions discrimination case."""

    def test_flagged_biased(self, berkeley_report):
        assert berkeley_report.biased

    def test_department_is_the_explanation(self, berkeley_report):
        coarse = berkeley_report.contexts[0].coarse
        assert coarse[0].attribute == "Department"
        assert coarse[0].responsibility == pytest.approx(1.0)

    def test_naive_matches_published_rates(self, berkeley_report):
        naive = berkeley_report.contexts[0].naive
        assert naive.average("Male") == pytest.approx(0.445, abs=0.005)
        assert naive.average("Female") == pytest.approx(0.304, abs=0.005)
        assert naive.p_value() < ALPHA

    def test_trend_reverses_after_conditioning(self, berkeley_report):
        """The paper's key HypDB finding: the association survives
        conditioning on Department but the trend is *reversed*."""
        direct = berkeley_report.contexts[0].direct
        assert direct.average("Female") > direct.average("Male")
        assert direct.p_value() < ALPHA

    def test_fine_grained_departments(self, berkeley_report):
        """Paper: men applied to high-acceptance departments A/B."""
        triples = berkeley_report.contexts[0].fine["Department"]
        top = triples[0]
        assert top.treatment_value == "Male"
        assert top.attribute_value in ("A", "B")


@pytest.fixture(scope="module")
def staples_report():
    return HypDB(staples_data(n_rows=50000, seed=4), seed=1).analyze(
        "SELECT Income, avg(Price) FROM StaplesData GROUP BY Income"
    )


class TestStaplesScenario:
    """Paper Fig. 3 bottom: income affects price only via distance."""

    def test_low_income_pays_more(self, staples_report):
        naive = staples_report.contexts[0].naive
        assert naive.average(0) > naive.average(1)
        assert naive.p_value() < ALPHA

    def test_total_effect_significant(self, staples_report):
        total = staples_report.contexts[0].total
        assert total.average(0) > total.average(1)
        assert total.p_value() < ALPHA

    def test_no_direct_effect(self, staples_report):
        direct = staples_report.contexts[0].direct
        assert abs(direct.difference()) < 0.005
        assert direct.p_value() >= ALPHA

    def test_distance_explains_everything(self, staples_report):
        coarse = staples_report.contexts[0].coarse
        assert coarse[0].attribute == "Distance"
        assert coarse[0].responsibility > 0.9

    def test_distance_discovered_as_mediator(self, staples_report):
        assert "Distance" in staples_report.mediators


@pytest.fixture(scope="module")
def cancer_report():
    return HypDB(cancer_data(n_rows=2000, seed=3), seed=1).analyze(
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer"
    )


class TestCancerScenario:
    """Paper Fig. 4 bottom: ground-truth validation on CancerData."""

    def test_flagged_biased(self, cancer_report):
        assert cancer_report.biased

    def test_exact_parents_of_treatment_discovered(self, cancer_report):
        assert set(cancer_report.covariates) == {"Genetics", "Smoking"}
        assert not cancer_report.covariate_discovery.used_fallback

    def test_mediators_are_accident_parents(self, cancer_report):
        assert set(cancer_report.mediators) == {"Attention_Disorder", "Fatigue"}

    def test_total_effect_significant(self, cancer_report):
        total = cancer_report.contexts[0].total
        assert total.average(1) > total.average(0)
        assert total.p_value() < ALPHA

    def test_direct_effect_insignificant(self, cancer_report):
        """Ground truth has no Lung_Cancer -> Car_Accident edge."""
        direct = cancer_report.contexts[0].direct
        assert direct.p_value() >= ALPHA

    def test_fatigue_most_responsible(self, cancer_report):
        coarse = cancer_report.contexts[0].coarse
        assert coarse[0].attribute == "Fatigue"

    def test_fine_grained_matches_paper(self, cancer_report):
        """Paper: rank-1 (0,0,0), rank-2 (1,1,1) for Fatigue."""
        triples = cancer_report.contexts[0].fine["Fatigue"]
        patterns = [
            (t.treatment_value, t.outcome_value, t.attribute_value) for t in triples
        ]
        assert (0, 0, 0) in patterns
        assert (1, 1, 1) in patterns


@pytest.fixture(scope="module")
def adult_report():
    return HypDB(adult_data(n_rows=30000, seed=5), seed=1).analyze(
        "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender"
    )


class TestAdultScenario:
    """Paper Fig. 3 top: gender/income analysis on census-style data."""

    def test_flagged_biased(self, adult_report):
        assert adult_report.biased

    def test_naive_disparity_shape(self, adult_report):
        naive = adult_report.contexts[0].naive
        assert naive.average("Female") < 0.20
        assert naive.average("Male") > 0.28
        assert naive.p_value() < ALPHA

    def test_direct_effect_shows_no_disparity(self, adult_report):
        direct = adult_report.contexts[0].direct
        assert abs(direct.difference()) < 0.03
        assert direct.p_value() >= ALPHA

    def test_marital_status_top_explanation(self, adult_report):
        coarse = adult_report.contexts[0].coarse
        assert coarse[0].attribute == "MaritalStatus"

    def test_married_male_insight(self, adult_report):
        """Paper: rank-1 fine-grained triple is (Male, 1, Married)."""
        triples = adult_report.contexts[0].fine["MaritalStatus"]
        top = triples[0]
        assert top.treatment_value == "Male"
        assert top.attribute_value == "Married"
        assert top.outcome_value == 1

    def test_marital_status_discovered_as_mediator(self, adult_report):
        assert "MaritalStatus" in adult_report.mediators
