"""Tests for the benchmark regression gate (scripts/check_bench_regression.py).

Runs the script as a subprocess against synthetic results/baselines
directories, covering: regression detection, calibration normalization,
the parallel-row core-count skip, the noise floor, missing baselines, and
malformed baseline files.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "check_bench_regression.py"

WORKLOAD = {"figure": "fig6b", "n_rows": 5000, "scale": 0.25}


def payload(
    serial_seconds: float,
    parallel_seconds: float | None = None,
    calibration: float = 1.0,
    cpu_count: int = 4,
    workload: dict | None = None,
) -> dict:
    rows = [{"engine": "serial", "jobs": 1, "seconds": serial_seconds, "speedup": 1.0}]
    if parallel_seconds is not None:
        rows.append(
            {"engine": "parallel", "jobs": 4, "seconds": parallel_seconds, "speedup": 1.0}
        )
    return {
        "benchmark": "engine_scaling",
        "workload": WORKLOAD if workload is None else workload,
        "cpu_count": cpu_count,
        "calibration_seconds": calibration,
        "results": rows,
    }


def run_gate(tmp_path: Path, current: dict | str, baseline: dict | str | None):
    """Write the fixture files and run the gate; returns CompletedProcess."""
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir(exist_ok=True)
    baselines.mkdir(exist_ok=True)
    name = "BENCH_engine.json"
    current_text = current if isinstance(current, str) else json.dumps(current)
    (results / name).write_text(current_text)
    if baseline is not None:
        baseline_text = baseline if isinstance(baseline, str) else json.dumps(baseline)
        (baselines / name).write_text(baseline_text)
    return subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--results",
            str(results),
            "--baselines",
            str(baselines),
            "--tolerance",
            "0.25",
        ],
        capture_output=True,
        text=True,
    )


class TestRegressionDetection:
    def test_regression_fails_the_gate(self, tmp_path):
        completed = run_gate(tmp_path, payload(2.0), payload(1.0))
        assert completed.returncode == 1
        assert "REGRESSION" in completed.stdout
        assert "2.00x baseline" in completed.stdout

    def test_within_tolerance_passes(self, tmp_path):
        completed = run_gate(tmp_path, payload(1.2), payload(1.0))
        assert completed.returncode == 0
        assert "gate passed" in completed.stdout

    def test_improvement_is_reported_never_required(self, tmp_path):
        completed = run_gate(tmp_path, payload(0.5), payload(1.0))
        assert completed.returncode == 0
        assert "improvement" in completed.stdout


class TestCalibrationNormalization:
    def test_slow_runner_is_normalized_away(self, tmp_path):
        # Twice the wall clock on a machine whose calibration is also twice
        # as slow: normalized ratio 1.0, no regression.
        completed = run_gate(
            tmp_path, payload(2.0, calibration=2.0), payload(1.0, calibration=1.0)
        )
        assert completed.returncode == 0
        assert "1.00x baseline (normalized)" in completed.stdout

    def test_fast_runner_does_not_mask_regressions(self, tmp_path):
        # Half the calibration time (a 2x faster machine) but the same wall
        # clock: normalized, the benchmark got 2x slower.
        completed = run_gate(
            tmp_path, payload(1.0, calibration=0.5), payload(1.0, calibration=1.0)
        )
        assert completed.returncode == 1
        assert "REGRESSION" in completed.stdout


class TestCoreCountSkip:
    def test_parallel_rows_skip_on_core_count_mismatch(self, tmp_path):
        completed = run_gate(
            tmp_path,
            payload(1.0, parallel_seconds=9.0, cpu_count=4),
            payload(1.0, parallel_seconds=1.0, cpu_count=1),
        )
        assert completed.returncode == 0
        assert "reported, not gated" in completed.stdout
        assert "regenerate the baseline" in completed.stdout

    def test_serial_rows_stay_gated_despite_mismatch(self, tmp_path):
        completed = run_gate(
            tmp_path,
            payload(9.0, parallel_seconds=9.0, cpu_count=4),
            payload(1.0, parallel_seconds=1.0, cpu_count=1),
        )
        assert completed.returncode == 1
        assert "('serial', 1)" in completed.stdout

    def test_single_threaded_rows_gate_across_core_counts(self, tmp_path):
        # jobs == 1 rows that are not engine "serial" (the service bench's
        # cold/warm rows) must stay gated even when cpu_count differs --
        # calibration already normalizes single-core speed.
        def service_payload(cold_seconds, cpu_count):
            return {
                "benchmark": "service_throughput",
                "workload": {"dataset": "flights", "scale": 0.25},
                "cpu_count": cpu_count,
                "calibration_seconds": 1.0,
                "results": [
                    {"engine": "service-cold", "jobs": 1, "seconds": cold_seconds}
                ],
            }

        completed = run_gate(
            tmp_path,
            service_payload(9.0, cpu_count=4),
            service_payload(1.0, cpu_count=1),
        )
        assert completed.returncode == 1
        assert "('service-cold', 1)" in completed.stdout

    def test_matching_core_count_gates_parallel_rows(self, tmp_path):
        completed = run_gate(
            tmp_path,
            payload(1.0, parallel_seconds=9.0, cpu_count=4),
            payload(1.0, parallel_seconds=1.0, cpu_count=4),
        )
        assert completed.returncode == 1
        assert "('parallel', 4)" in completed.stdout


class TestGuardRails:
    def test_malformed_baseline_fails_loudly(self, tmp_path):
        completed = run_gate(tmp_path, payload(1.0), "{not json at all")
        assert completed.returncode == 1
        assert "malformed benchmark JSON" in completed.stdout

    def test_non_object_baseline_fails_loudly(self, tmp_path):
        completed = run_gate(tmp_path, payload(1.0), "[1, 2, 3]")
        assert completed.returncode == 1
        assert "malformed benchmark JSON" in completed.stdout

    def test_missing_baseline_passes_with_notice(self, tmp_path):
        completed = run_gate(tmp_path, payload(1.0), None)
        assert completed.returncode == 0
        assert "no committed baseline" in completed.stdout

    def test_workload_mismatch_skips_comparison(self, tmp_path):
        other = dict(WORKLOAD, scale=1.0)
        completed = run_gate(tmp_path, payload(9.0, workload=other), payload(1.0))
        assert completed.returncode == 0
        assert "workload metadata differs" in completed.stdout

    def test_noise_floor_rows_not_gated(self, tmp_path):
        completed = run_gate(tmp_path, payload(0.04), payload(0.01))
        assert completed.returncode == 0
        assert "noise floor" in completed.stdout

    def test_empty_results_dir_passes(self, tmp_path):
        (tmp_path / "results").mkdir()
        (tmp_path / "baselines").mkdir()
        completed = subprocess.run(
            [
                sys.executable,
                str(SCRIPT),
                "--results",
                str(tmp_path / "results"),
                "--baselines",
                str(tmp_path / "baselines"),
            ],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "nothing to gate" in completed.stdout
