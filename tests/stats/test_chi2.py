"""Unit tests for the chi-squared (G) conditional-independence test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relation.table import Table
from repro.stats.chi2 import ChiSquaredTest, degrees_of_freedom, g_statistic


@pytest.fixture
def independent_table(rng) -> Table:
    n = 5000
    return Table.from_columns(
        {
            "X": rng.integers(0, 3, n).tolist(),
            "Y": rng.integers(0, 2, n).tolist(),
            "Z": rng.integers(0, 2, n).tolist(),
        }
    )


class TestDegreesOfFreedom:
    def test_marginal(self, independent_table):
        assert degrees_of_freedom(independent_table, "X", "Y", ()) == (3 - 1) * (2 - 1)

    def test_conditional(self, independent_table):
        df = degrees_of_freedom(independent_table, "X", "Y", ("Z",))
        assert df == (3 - 1) * (2 - 1) * 2

    def test_constant_column_gives_zero(self):
        table = Table.from_columns({"X": [1, 1, 1], "Y": [0, 1, 0]})
        assert degrees_of_freedom(table, "X", "Y", ()) == 0


class TestGStatistic:
    def test_scales_with_n(self, confounded_table):
        cmi, g = g_statistic(confounded_table, "T", "Y")
        assert g == pytest.approx(2 * confounded_table.n_rows * cmi)

    def test_non_negative(self, independent_table):
        _, g = g_statistic(independent_table, "X", "Y", ("Z",))
        assert g >= 0


class TestChiSquaredTest:
    def test_detects_dependence(self, confounded_table):
        result = ChiSquaredTest().test(confounded_table, "T", "Y")
        assert result.dependent(0.01)

    def test_accepts_conditional_independence(self, confounded_table):
        result = ChiSquaredTest().test(confounded_table, "T", "Y", ("Z",))
        assert result.independent(0.01)

    def test_accepts_marginal_independence(self, independent_table):
        result = ChiSquaredTest().test(independent_table, "X", "Y")
        assert result.independent(0.01)

    def test_constant_variable_trivially_independent(self):
        table = Table.from_columns({"X": [1] * 10, "Y": [0, 1] * 5})
        result = ChiSquaredTest().test(table, "X", "Y")
        assert result.p_value == 1.0
        assert result.df == 0

    def test_empty_table(self):
        table = Table.from_columns({"X": [], "Y": []})
        result = ChiSquaredTest().test(table, "X", "Y")
        assert result.p_value == 1.0

    def test_argument_validation(self, independent_table):
        test = ChiSquaredTest()
        with pytest.raises(ValueError, match="distinct"):
            test.test(independent_table, "X", "X")
        with pytest.raises(ValueError, match="conditioning"):
            test.test(independent_table, "X", "Y", ("X",))

    def test_call_counter(self, independent_table):
        test = ChiSquaredTest()
        test.test(independent_table, "X", "Y")
        test.test(independent_table, "X", "Z")
        assert test.calls == 2
        test.reset_counter()
        assert test.calls == 0

    def test_false_positive_rate_calibrated(self, rng):
        """Under the null, rejections at alpha=0.05 stay near 5%."""
        rejections = 0
        trials = 200
        for _ in range(trials):
            n = 400
            table = Table.from_columns(
                {
                    "X": rng.integers(0, 2, n).tolist(),
                    "Y": rng.integers(0, 2, n).tolist(),
                }
            )
            if ChiSquaredTest().test(table, "X", "Y").p_value < 0.05:
                rejections += 1
        assert rejections / trials < 0.12
