"""O(1) replicate payloads: the GroupedRef task protocol end to end.

Pins the tentpole contract of the grouped-tensor plane: MIT/HyMIT
replicate fan-outs carrying ``(GroupedRef, group_index)`` produce
bit-identical p-values to marginal-list payloads, on every transport
(in-process tensor, fork-inherited registry, spawn + shared-memory
attach), and the handles stay O(1) no matter how many conditioning
groups the tensor holds.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.engine import ParallelEngine, SerialEngine, dataplane
from repro.engine.base import ExecutionEngine
from repro.engine.dataplane import GroupedRef, resolve_grouped
from repro.relation.table import Table
from repro.stats.hybrid import HybridTest
from repro.stats.permutation import PermutationTest


@pytest.fixture
def wide_table(rng) -> Table:
    n = 3000
    z1 = rng.integers(0, 5, n)
    z2 = rng.integers(0, 4, n)
    t = (rng.random(n) < 0.25 + 0.1 * (z1 % 3)).astype(int)
    y = (rng.random(n) < 0.2 + 0.1 * (z2 % 2) + 0.1 * t).astype(int)
    return Table.from_columns(
        {"Z1": z1.tolist(), "Z2": z2.tolist(), "T": t.tolist(), "Y": y.tolist()}
    )


def _mit_p_value(table, engine, seed=11):
    test = PermutationTest(n_permutations=120, seed=seed, engine=engine)
    result = test.test(table, "T", "Y", ("Z1", "Z2"))
    return result.p_value, result.statistic


class TestPValueIdentity:
    def test_serial_parallel_and_legacy_payloads_agree(self, wide_table, monkeypatch):
        serial = _mit_p_value(wide_table, SerialEngine())
        with ParallelEngine(jobs=2, min_tasks=1) as engine:
            parallel = _mit_p_value(wide_table, engine)
        # Force the marginal-list fallback everywhere (plane unavailable).
        monkeypatch.setattr(
            ExecutionEngine, "publish_grouped", lambda self, table, key, grouped: None
        )
        legacy = _mit_p_value(wide_table, SerialEngine())
        assert serial == parallel == legacy

    @pytest.mark.slow
    def test_spawn_workers_attach_the_tensor_segment(self, wide_table):
        serial = _mit_p_value(wide_table, SerialEngine())
        with ParallelEngine(jobs=2, min_tasks=1, start_method="spawn") as engine:
            spawned = _mit_p_value(wide_table, engine)
        assert serial == spawned

    def test_hybrid_mit_branch_identical(self, rng):
        # Small sample, many cells: Cochran's rule routes to the
        # Monte-Carlo branch, which ships GroupedRef replicate tasks.
        n = 900
        z1 = rng.integers(0, 8, n)
        z2 = rng.integers(0, 7, n)
        t = (rng.random(n) < 0.3 + 0.05 * (z1 % 4)).astype(int)
        y = (rng.random(n) < 0.2 + 0.08 * (z2 % 3) + 0.15 * t).astype(int)
        sparse = Table.from_columns(
            {"Z1": z1.tolist(), "Z2": z2.tolist(), "T": t.tolist(), "Y": y.tolist()}
        )
        serial = HybridTest(n_permutations=120, seed=5).test(
            sparse, "T", "Y", ("Z1", "Z2")
        )
        with ParallelEngine(jobs=2, min_tasks=1) as engine:
            parallel = HybridTest(n_permutations=120, seed=5, engine=engine).test(
                sparse, "T", "Y", ("Z1", "Z2")
            )
        assert serial.method == "hymit[mit_sampling]"
        assert serial.p_value == parallel.p_value
        assert serial.statistic == parallel.statistic


class TestGroupedRefPayload:
    def _published(self, rng, z_card):
        n = 2000
        table = Table.from_columns(
            {
                "X": rng.integers(0, 6, n).tolist(),
                "Y": rng.integers(0, 5, n).tolist(),
                "Z": rng.integers(0, z_card, n).tolist(),
            }
        )
        grouped = table.grouped_contingencies("X", "Y", ("Z",))
        ref = dataplane.publish_grouped(table.fingerprint(), ("X", "Y", "Z"), grouped)
        return table, grouped, ref

    def test_handle_is_o1_in_group_count(self, rng):
        _, _, narrow = self._published(rng, z_card=2)
        _, _, wide = self._published(rng, z_card=64)
        try:
            assert narrow is not None and wide is not None
            narrow_bytes = len(pickle.dumps(narrow))
            wide_bytes = len(pickle.dumps(wide))
            assert narrow_bytes == wide_bytes  # independent of |Pi_Z|
            assert wide_bytes < 400
        finally:
            dataplane.release_grouped(narrow)
            dataplane.release_grouped(wide)

    def test_publish_is_refcounted_and_unlinks_at_zero(self, rng):
        table, grouped, ref = self._published(rng, z_card=4)
        composite = (ref.fingerprint, ref.key)
        again = dataplane.publish_grouped(table.fingerprint(), ("X", "Y", "Z"), grouped)
        assert again is ref
        assert composite in dataplane._registry.grouped_segments
        dataplane.release_grouped(ref)
        assert composite in dataplane._registry.grouped_segments
        dataplane.release_grouped(ref)
        assert composite not in dataplane._registry.grouped_segments
        assert composite not in dataplane._registry.grouped

    def test_resolve_passthrough_and_registry_hit(self, rng):
        table, grouped, ref = self._published(rng, z_card=4)
        try:
            assert resolve_grouped(grouped) is grouped
            assert resolve_grouped(ref) is grouped  # parent registry hit
        finally:
            dataplane.release_grouped(ref)

    def test_engine_close_releases_leaked_publications(self, rng):
        n = 500
        table = Table.from_columns(
            {
                "X": rng.integers(0, 3, n).tolist(),
                "Y": rng.integers(0, 3, n).tolist(),
                "Z": rng.integers(0, 3, n).tolist(),
            }
        )
        grouped = table.grouped_contingencies("X", "Y", ("Z",))
        engine = ParallelEngine(jobs=2)
        ref = engine.publish_grouped(table, ("X", "Y", "Z"), grouped)
        assert isinstance(ref, GroupedRef)
        composite = (ref.fingerprint, ref.key)
        assert composite in dataplane._registry.grouped_segments
        engine.close()  # caller forgot release_grouped: close sweeps it
        assert composite not in dataplane._registry.grouped_segments

    def test_serial_engine_hands_back_the_tensor(self, rng):
        table, grouped, ref = self._published(rng, z_card=4)
        dataplane.release_grouped(ref)
        engine = SerialEngine()
        handle = engine.publish_grouped(table, ("X", "Y", "Z"), grouped)
        assert handle is grouped
        engine.release_grouped(handle)  # no-op, must not raise


class TestWorkerMarginals:
    def test_tensor_slice_marginals_match_compressed_matrix(self, rng):
        """Zero-margin rows/columns never perturb the derived marginals."""
        from repro.stats.contingency import contingencies_from_grouped

        n = 1500
        table = Table.from_columns(
            {
                "X": rng.integers(0, 7, n).tolist(),
                "Y": rng.integers(0, 6, n).tolist(),
                "Z": rng.integers(0, 30, n).tolist(),
            }
        ).select(rng.random(1500) < 0.2)  # sparse: some margins vanish
        grouped = table.grouped_contingencies("X", "Y", ("Z",))
        for group in contingencies_from_grouped(table, grouped, ("Z",)):
            cell = grouped.tensor[group.index]
            row_sums = cell.sum(axis=1)
            col_sums = cell.sum(axis=0)
            assert np.array_equal(row_sums[row_sums > 0], group.matrix.sum(axis=1))
            assert np.array_equal(col_sums[col_sums > 0], group.matrix.sum(axis=0))
