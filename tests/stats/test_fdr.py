"""Unit tests for Benjamini-Hochberg FDR control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.base import CIResult
from repro.stats.fdr import benjamini_hochberg, fdr_filter_results


class TestBenjaminiHochberg:
    def test_textbook_example(self):
        # Classic BH walk-through values.
        p = [0.01, 0.04, 0.03, 0.005, 0.8]
        outcome = benjamini_hochberg(p, q=0.05)
        assert outcome.rejected == (True, True, True, True, False)

    def test_nothing_rejected_under_uniform_nulls(self):
        p = [0.3, 0.5, 0.7, 0.9]
        outcome = benjamini_hochberg(p, q=0.05)
        assert outcome.n_rejected == 0
        assert outcome.threshold == 0.0

    def test_all_rejected_when_all_tiny(self):
        outcome = benjamini_hochberg([1e-5, 1e-6, 1e-4], q=0.05)
        assert outcome.n_rejected == 3

    def test_step_up_rescues_borderline(self):
        """0.04 alone fails 1/2*0.05 but is rescued by the step-up rule
        when a smaller p-value pushes the threshold."""
        outcome = benjamini_hochberg([0.001, 0.04], q=0.05)
        assert outcome.rejected == (True, True)

    def test_empty(self):
        outcome = benjamini_hochberg([], q=0.05)
        assert outcome.rejected == ()

    def test_rejections_more_lenient_than_bonferroni(self, rng):
        p = np.concatenate([rng.uniform(0, 0.01, 10), rng.uniform(0.2, 1, 40)])
        outcome = benjamini_hochberg(p.tolist(), q=0.05)
        bonferroni = (p < 0.05 / len(p)).sum()
        assert outcome.n_rejected >= bonferroni

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            benjamini_hochberg([0.5], q=2.0)
        with pytest.raises(ValueError, match="p-values"):
            benjamini_hochberg([1.5], q=0.05)

    def test_fdr_controlled_empirically(self, rng):
        """Across repeated all-null families, the FDR stays near q."""
        false_discoveries = 0
        families = 300
        for _ in range(families):
            p = rng.uniform(0, 1, 20)
            if benjamini_hochberg(p.tolist(), q=0.05).n_rejected > 0:
                false_discoveries += 1
        # With all hypotheses null, P(any rejection) <= q.
        assert false_discoveries / families < 0.10


class TestFilterResults:
    def test_pairs_results_with_verdicts(self):
        results = [
            CIResult(statistic=0.1, p_value=0.001, method="chi2"),
            CIResult(statistic=0.0, p_value=0.7, method="chi2"),
        ]
        paired = fdr_filter_results(results, q=0.05)
        assert paired[0][1] is True
        assert paired[1][1] is False
        assert paired[0][0] is results[0]
