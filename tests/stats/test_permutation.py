"""Unit tests for MIT (Alg. 2), the permutation test over contingency tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infotheory.mutual_information import (
    mutual_information_batch,
    mutual_information_from_matrix,
)
from repro.relation.table import Table
from repro.stats.naive import NaiveShuffleTest
from repro.stats.permutation import PermutationTest


class TestMutualInformationBatch:
    def test_matches_scalar_kernel(self, rng):
        from repro.stats.patefield import sample_contingency_tables

        tables = sample_contingency_tables([20, 30], [25, 25], 50, rng)
        batch = mutual_information_batch(tables, "plugin")
        scalar = [mutual_information_from_matrix(t, "plugin") for t in tables]
        np.testing.assert_allclose(batch, scalar, atol=1e-12)

    def test_miller_madow_variant(self, rng):
        from repro.stats.patefield import sample_contingency_tables

        tables = sample_contingency_tables([10, 10], [10, 10], 20, rng)
        batch = mutual_information_batch(tables, "miller_madow")
        scalar = [mutual_information_from_matrix(t, "miller_madow") for t in tables]
        np.testing.assert_allclose(batch, scalar, atol=1e-12)

    def test_empty_batch(self):
        assert mutual_information_batch(np.zeros((0, 2, 2))).shape == (0,)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="m, r, c"):
            mutual_information_batch(np.zeros((2, 2)))


class TestPermutationTest:
    def test_detects_marginal_dependence(self, confounded_table):
        test = PermutationTest(n_permutations=300, seed=0)
        result = test.test(confounded_table, "T", "Y")
        assert result.dependent(0.01)
        assert result.p_floor == pytest.approx(1 / 301)

    def test_accepts_conditional_independence(self, confounded_table):
        test = PermutationTest(n_permutations=300, seed=0)
        result = test.test(confounded_table, "T", "Y", ("Z",))
        assert result.independent(0.01)

    def test_p_interval_reported(self, confounded_table):
        result = PermutationTest(n_permutations=200, seed=1).test(
            confounded_table, "T", "Y", ("Z",)
        )
        low, high = result.p_interval
        assert 0.0 <= low <= result.p_value + 0.01
        assert result.p_value - 0.01 <= high <= 1.0

    @pytest.mark.slow
    def test_agrees_with_naive_shuffle(self, confounded_table):
        mit = PermutationTest(n_permutations=200, seed=2).test(
            confounded_table, "T", "Y", ("Z",)
        )
        naive = NaiveShuffleTest(n_permutations=100, seed=3).test(
            confounded_table, "T", "Y", ("Z",)
        )
        assert mit.statistic == pytest.approx(naive.statistic)
        assert abs(mit.p_value - naive.p_value) < 0.2

    def test_degenerate_constant_variable(self):
        table = Table.from_columns({"X": [1] * 20, "Y": [0, 1] * 10})
        result = PermutationTest(n_permutations=50, seed=0).test(table, "X", "Y")
        assert result.p_value == 1.0

    def test_empty_table(self):
        table = Table.from_columns({"X": [], "Y": []})
        result = PermutationTest(n_permutations=50, seed=0).test(table, "X", "Y")
        assert result.p_value == 1.0

    @pytest.mark.slow
    def test_null_calibration_with_group_sampling(self, rng):
        """Under a true conditional null, sampled-group MIT keeps its size.

        This is a regression test for a weighting bug where the observed
        statistic was re-normalized over sampled groups but the replicates
        were not, which drove the null p-values to zero.
        """
        n = 4000
        table = Table.from_columns(
            {
                "X": rng.integers(0, 3, n).tolist(),
                "Y": rng.integers(0, 3, n).tolist(),
                "Z": rng.integers(0, 30, n).tolist(),
            }
        )
        p_values = []
        for seed in range(30):
            test = PermutationTest(n_permutations=100, group_sampling="log", seed=seed)
            p_values.append(test.test(table, "X", "Y", ("Z",)).p_value)
        p_values = np.array(p_values)
        assert p_values.mean() > 0.2
        assert (p_values < 0.01).mean() <= 0.1

    def test_group_sampling_fraction(self, confounded_table):
        test = PermutationTest(n_permutations=100, group_sampling=0.5, seed=4)
        result = test.test(confounded_table, "T", "Y", ("Z",))
        assert 0.0 <= result.p_value <= 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="positive"):
            PermutationTest(n_permutations=0)
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            PermutationTest(group_sampling=1.5)

    def test_invalid_sampling_policy(self, confounded_table):
        test = PermutationTest(n_permutations=10, group_sampling="bogus", seed=0)
        with pytest.raises(ValueError, match="group_sampling"):
            test.test(confounded_table, "T", "Y", ("Z",))

    def test_power_with_group_sampling(self, confounded_table):
        """Sampling groups must not destroy power on real dependence."""
        test = PermutationTest(n_permutations=200, group_sampling="log", seed=5)
        result = test.test(confounded_table, "T", "Z")
        assert result.dependent(0.01)
