"""Unit tests for HyMIT, the hybrid independence test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relation.table import Table
from repro.stats.hybrid import HybridTest


class TestRouting:
    def test_small_df_routes_to_chi2(self, confounded_table):
        test = HybridTest(seed=0)
        result = test.test(confounded_table, "T", "Y")
        assert "chi2" in result.method
        assert test.chi2_calls == 1
        assert test.mit_calls == 0

    def test_sparse_strata_route_to_mit(self, rng):
        n = 600
        table = Table.from_columns(
            {
                "X": rng.integers(0, 4, n).tolist(),
                "Y": rng.integers(0, 4, n).tolist(),
                "Z": rng.integers(0, 40, n).tolist(),
            }
        )
        test = HybridTest(n_permutations=100, seed=0)
        result = test.test(table, "X", "Y", ("Z",))
        assert "mit" in result.method
        assert test.mit_calls == 1

    def test_df_routing_mode(self, rng):
        n = 600
        table = Table.from_columns(
            {
                "X": rng.integers(0, 2, n).tolist(),
                "Y": rng.integers(0, 2, n).tolist(),
                "Z": rng.integers(0, 60, n).tolist(),
            }
        )
        cells_test = HybridTest(routing="cells", n_permutations=50, seed=0)
        df_test = HybridTest(routing="df", n_permutations=50, seed=0)
        cells_test.test(table, "X", "Y", ("Z",))
        df_test.test(table, "X", "Y", ("Z",))
        # df routing keeps chi2 in this regime; cells routing defers to MIT.
        assert cells_test.mit_calls == 1
        assert df_test.chi2_calls == 1

    def test_invalid_routing_rejected(self):
        with pytest.raises(ValueError, match="routing"):
            HybridTest(routing="bogus")

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            HybridTest(beta=0)


class TestVerdicts:
    def test_detects_dependence(self, confounded_table):
        result = HybridTest(seed=1).test(confounded_table, "T", "Z")
        assert result.dependent(0.01)

    def test_accepts_conditional_independence(self, confounded_table):
        result = HybridTest(seed=1).test(confounded_table, "T", "Y", ("Z",))
        assert result.independent(0.01)

    def test_sparse_null_not_rejected(self, rng):
        """The Cochran routing protects against sparse-strata chi2 blowups."""
        n = 2000
        table = Table.from_columns(
            {
                "X": rng.integers(0, 3, n).tolist(),
                "Y": rng.integers(0, 5, n).tolist(),
                "W": rng.integers(1, 8, n).tolist(),
                "M": rng.integers(1, 13, n).tolist(),
                "C": rng.integers(0, 2, n).tolist(),
            }
        )
        result = HybridTest(n_permutations=200, seed=2).test(
            table, "X", "Y", ("W", "M", "C")
        )
        assert result.independent(0.01)

    def test_p_floor_propagated(self, rng):
        n = 500
        table = Table.from_columns(
            {
                "X": rng.integers(0, 4, n).tolist(),
                "Y": rng.integers(0, 4, n).tolist(),
                "Z": rng.integers(0, 40, n).tolist(),
            }
        )
        result = HybridTest(n_permutations=100, seed=3).test(table, "X", "Y", ("Z",))
        assert result.p_floor == pytest.approx(1 / 101)
