"""The single-pass grouped contingency kernel vs the per-group scan.

The contract: :meth:`Table.grouped_contingencies` (and everything built on
it -- ``conditional_contingencies``, the chi-squared G statistic, HyMIT
routing) produces *byte-identical* results to the per-group reference
scan, for randomized tables including sub-populations whose domains carry
unobserved values.
"""

from __future__ import annotations

import numpy as np

from repro.infotheory.cache import EntropyEngine
from repro.relation.table import Table
from repro.stats.chi2 import ChiSquaredTest, degrees_of_freedom, g_statistic
from repro.stats.contingency import (
    _conditional_contingencies_scan,
    conditional_contingencies,
    contingencies_from_grouped,
)
from repro.stats.hybrid import HybridTest
from repro.stats.permutation import PermutationTest


def random_table(rng: np.random.Generator, n: int, n_cols: int = 4) -> Table:
    """A randomized categorical table; sometimes a selection, so domains
    can contain values no row carries (the compressed-matrix edge case)."""
    columns = {}
    for index in range(n_cols):
        cardinality = int(rng.integers(1, 7))
        values = rng.integers(0, cardinality, n)
        if rng.random() < 0.5:
            columns[f"c{index}"] = [f"v{value}" for value in values]
        else:
            columns[f"c{index}"] = values.tolist()
    table = Table.from_columns(columns)
    if n and rng.random() < 0.6:
        table = table.select(rng.random(n) < 0.7)
    return table


def random_case(rng: np.random.Generator):
    table = random_table(rng, int(rng.integers(0, 400)))
    names = list(table.columns)
    z = tuple(names[2 : 2 + int(rng.integers(0, 3))])
    return table, names[0], names[1], z


class TestKernelMatchesScan:
    def test_matrices_labels_weights_identical(self):
        rng = np.random.default_rng(7)
        non_trivial = 0
        for _ in range(120):
            table, x, y, z = random_case(rng)
            fast = conditional_contingencies(table, x, y, z)
            reference = _conditional_contingencies_scan(table, x, y, z)
            assert len(fast) == len(reference)
            non_trivial += len(reference) > 1
            for got, expected in zip(fast, reference):
                assert got.z_value == expected.z_value
                assert got.weight == expected.weight
                assert got.matrix.dtype == expected.matrix.dtype
                assert np.array_equal(got.matrix, expected.matrix)
        assert non_trivial > 20  # the sweep actually exercised grouped cases

    def test_empty_conditioning_single_group(self, small_table):
        groups = conditional_contingencies(small_table, "T", "Y", ())
        assert len(groups) == 1
        assert groups[0].z_value == ()
        assert groups[0].weight == 1.0

    def test_over_budget_tensor_falls_back(self, small_table):
        assert small_table.grouped_contingencies("T", "Y", ("Z",), max_cells=1) is None
        # The public path still answers, via the scan.
        groups = conditional_contingencies(small_table, "T", "Y", ("Z",))
        assert len(groups) == 2

    def test_empty_table_returns_none(self):
        table = Table.from_columns({"X": [], "Y": []})
        assert table.grouped_contingencies("X", "Y") is None
        assert conditional_contingencies(table, "X", "Y", ()) == []

    def test_expand_matches_public_path(self, small_table):
        grouped = small_table.grouped_contingencies("T", "Y", ("Z",))
        expanded = contingencies_from_grouped(small_table, grouped, ("Z",))
        public = conditional_contingencies(small_table, "T", "Y", ("Z",))
        assert [group.z_value for group in expanded] == [
            group.z_value for group in public
        ]


class TestChiSquaredByteIdentity:
    def test_g_statistic_matches_entropy_engine(self):
        rng = np.random.default_rng(11)
        for _ in range(80):
            table, x, y, z = random_case(rng)
            if table.n_rows == 0:
                continue
            cmi_new, g_new = g_statistic(table, x, y, z)
            engine = EntropyEngine(table, estimator="plugin", caching=False)
            cmi_old = engine.mutual_information((x,), (y,), z)
            assert cmi_new == cmi_old  # bitwise, not approx
            assert g_new == 2.0 * table.n_rows * max(cmi_old, 0.0)

    def test_degrees_of_freedom_from_kernel(self):
        rng = np.random.default_rng(13)
        for _ in range(40):
            table, x, y, z = random_case(rng)
            if table.n_rows == 0:
                continue
            grouped = table.grouped_contingencies(x, y, z)
            assert degrees_of_freedom(table, x, y, z, grouped=grouped) == (
                degrees_of_freedom(table, x, y, z)
            )

    def test_chi2_test_unchanged_on_fallback(self, confounded_table):
        routed = ChiSquaredTest().test(confounded_table, "T", "Y", ("Z",))
        grouped_none = ChiSquaredTest().test_with_grouped(
            confounded_table, "T", "Y", ("Z",), None
        )
        assert routed.p_value == grouped_none.p_value
        assert routed.statistic == grouped_none.statistic
        assert routed.df == grouped_none.df


class TestHybridRouting:
    def test_routing_decision_matches_n_groups(self):
        rng = np.random.default_rng(17)
        for _ in range(30):
            table, x, y, z = random_case(rng)
            if table.n_rows == 0:
                continue
            test = HybridTest(n_permutations=60, seed=1)
            result = test.test(table, x, y, z)
            n_cells = (
                table.n_groups((x,)) * table.n_groups((y,)) * max(table.n_groups(z), 1)
            )
            expected_branch = (
                "chi2" if table.n_rows >= test.beta * n_cells else "mit_sampling"
            )
            assert result.method == f"hymit[{expected_branch}]"

    def test_branch_results_match_direct_tests(self, confounded_table):
        hybrid = HybridTest(n_permutations=80, seed=5).test(
            confounded_table, "T", "Y", ("Z",)
        )
        direct = ChiSquaredTest().test(confounded_table, "T", "Y", ("Z",))
        assert hybrid.method == "hymit[chi2]"
        assert hybrid.p_value == direct.p_value

    def test_counters_route_exactly_once(self, confounded_table):
        test = HybridTest(n_permutations=50, seed=0)
        test.test(confounded_table, "T", "Y", ("Z",))
        assert test.calls == 1
        assert test.chi2_calls + test.mit_calls == 1


class TestPermutationWithGroups:
    def test_precomputed_groups_reproduce_p_value(self, confounded_table):
        z = ("Z",)
        reference = PermutationTest(n_permutations=120, seed=9).test(
            confounded_table, "T", "Y", z
        )
        test = PermutationTest(n_permutations=120, seed=9)
        groups = conditional_contingencies(confounded_table, "T", "Y", z)
        result = test.test_with_groups(confounded_table, "T", "Y", z, groups)
        assert result.p_value == reference.p_value
        assert result.statistic == reference.statistic
        assert test.calls == 1
