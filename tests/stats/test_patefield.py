"""Tests for the fixed-marginal contingency-table sampler.

The correctness property is distributional: the sampler must produce
tables with exactly the requested marginals, distributed like the tables
obtained by randomly shuffling one column against the other.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.patefield import sample_contingency_tables, shuffle_null_table


class TestMarginals:
    @pytest.mark.parametrize(
        "rows, cols",
        [
            ([10, 20], [15, 15]),
            ([5, 0, 7], [4, 4, 4]),
            ([1], [1]),
            ([3, 3, 3, 3], [6, 6]),
            ([100], [40, 60]),
        ],
    )
    def test_exact_marginals(self, rows, cols, rng):
        tables = sample_contingency_tables(rows, cols, 50, rng)
        assert tables.shape == (50, len(rows), len(cols))
        np.testing.assert_array_equal(tables.sum(axis=2), np.tile(rows, (50, 1)))
        np.testing.assert_array_equal(tables.sum(axis=1), np.tile(cols, (50, 1)))

    def test_non_negative_cells(self, rng):
        tables = sample_contingency_tables([7, 13], [9, 11], 100, rng)
        assert (tables >= 0).all()

    def test_zero_total(self, rng):
        tables = sample_contingency_tables([0, 0], [0, 0], 5, rng)
        assert tables.sum() == 0

    def test_mismatched_totals_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            sample_contingency_tables([10], [5], 3)

    def test_negative_marginals_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            sample_contingency_tables([-1, 2], [1, 0], 3)

    def test_m_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            sample_contingency_tables([1], [1], 0)

    def test_seed_reproducible(self):
        a = sample_contingency_tables([10, 10], [10, 10], 20, 42)
        b = sample_contingency_tables([10, 10], [10, 10], 20, 42)
        np.testing.assert_array_equal(a, b)


class TestDistribution:
    def test_2x2_matches_hypergeometric(self, rng):
        """For a 2x2 table, cell (0,0) is exactly hypergeometric."""
        rows, cols = [12, 8], [10, 10]
        m = 4000
        tables = sample_contingency_tables(rows, cols, m, rng)
        observed = tables[:, 0, 0]
        expected_mean = rows[0] * cols[0] / 20
        # Hypergeometric(ngood=10, nbad=10, nsample=12) mean & variance.
        n, k, total = 12, 10, 20
        variance = n * (k / total) * (1 - k / total) * (total - n) / (total - 1)
        assert observed.mean() == pytest.approx(expected_mean, abs=0.1)
        assert observed.var() == pytest.approx(variance, rel=0.15)

    def test_matches_shuffle_distribution(self, rng):
        """Cell means under the sampler match the brute-force shuffle."""
        x = np.array([0] * 15 + [1] * 10)
        y = np.array(([0] * 9 + [1] * 6) + ([0] * 4 + [1] * 6))
        m = 3000
        sampled = sample_contingency_tables([15, 10], [13, 12], m, rng)
        shuffled = np.stack([shuffle_null_table(x, y, rng) for _ in range(m)])
        np.testing.assert_allclose(
            sampled.mean(axis=0), shuffled.mean(axis=0), atol=0.25
        )

    def test_wide_table_cells_vary(self, rng):
        tables = sample_contingency_tables([20, 20, 20], [15, 15, 15, 15], 200, rng)
        # The sampler must actually randomize, not return a constant table.
        assert len({tuple(t.ravel()) for t in tables}) > 100
