"""Unit tests for contingency-table construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.contingency import conditional_contingencies, contingency_matrix
from repro.relation.table import Table


@pytest.fixture
def table() -> Table:
    return Table.from_columns(
        {
            "X": ["a", "a", "b", "b", "a", "b"],
            "Y": [0, 1, 0, 1, 1, 1],
            "Z": ["u", "u", "u", "v", "v", "v"],
        }
    )


class TestContingencyMatrix:
    def test_counts_and_labels(self, table):
        matrix, rows, cols = contingency_matrix(table, "X", "Y")
        assert rows == ["a", "b"]
        assert cols == [0, 1]
        np.testing.assert_array_equal(matrix, [[1, 2], [1, 2]])

    def test_total_is_n(self, table):
        matrix, _, _ = contingency_matrix(table, "X", "Y")
        assert matrix.sum() == table.n_rows

    def test_indices_restrict(self, table):
        matrix, rows, cols = contingency_matrix(table, "X", "Y", np.array([0, 1, 2]))
        assert matrix.sum() == 3

    def test_compressed_to_observed_values(self, table):
        # Within indices where X == 'a' only, the matrix has a single row.
        indices = np.array([0, 1, 4])
        matrix, rows, _ = contingency_matrix(table, "X", "Y", indices)
        assert rows == ["a"]
        assert matrix.shape[0] == 1


class TestConditionalContingencies:
    def test_one_matrix_per_group(self, table):
        groups = conditional_contingencies(table, "X", "Y", ["Z"])
        assert {group.z_value for group in groups} == {("u",), ("v",)}

    def test_weights_sum_to_one(self, table):
        groups = conditional_contingencies(table, "X", "Y", ["Z"])
        assert sum(group.weight for group in groups) == pytest.approx(1.0)

    def test_group_sizes(self, table):
        groups = conditional_contingencies(table, "X", "Y", ["Z"])
        assert sum(group.n for group in groups) == table.n_rows

    def test_empty_conditioning_single_group(self, table):
        groups = conditional_contingencies(table, "X", "Y", [])
        assert len(groups) == 1
        assert groups[0].weight == pytest.approx(1.0)

    def test_empty_table(self):
        table = Table.from_columns({"X": [], "Y": [], "Z": []})
        assert conditional_contingencies(table, "X", "Y", ["Z"]) == []
